#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/network_sim.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace obs = beesim::obs;
namespace sim = beesim::sim;
namespace util = beesim::util;

namespace {

/// Flips the global toggle for one test and restores it on exit, so tests
/// never leak instrumentation state into each other.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : previous_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~EnabledGuard() { obs::set_enabled(previous_); }

 private:
  bool previous_;
};

}  // namespace

// ------------------------------------------------------------------ Counter

TEST(ObsCounter, CountsWhenEnabled) {
  EnabledGuard guard(true);
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, NoOpWhenDisabled) {
  EnabledGuard guard(false);
  obs::Counter c;
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
}

// -------------------------------------------------------------------- Gauge

TEST(ObsGauge, SetAddMax) {
  EnabledGuard guard(true);
  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.update_max(2.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.update_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(ObsGauge, NoOpWhenDisabled) {
  EnabledGuard guard(false);
  obs::Gauge g;
  g.set(3.5);
  g.add(1.0);
  g.update_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------- Histogram

TEST(ObsHistogram, BucketsByUpperBoundInclusive) {
  EnabledGuard guard(true);
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (inclusive)
  h.observe(1.5);  // <= 2
  h.observe(5.0);  // <= 5
  h.observe(99.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 99.0);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, LinearBounds) {
  const auto bounds = obs::Histogram::linear_bounds(0.0, 10.0, 5);
  EXPECT_EQ(bounds, (std::vector<double>{2.0, 4.0, 6.0, 8.0, 10.0}));
  EXPECT_THROW(obs::Histogram::linear_bounds(1.0, 1.0, 3),
               std::invalid_argument);
}

// -------------------------------------------------------------------- Timer

TEST(ObsTimer, RecordsStatistics) {
  EnabledGuard guard(true);
  obs::Timer t;
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.0);  // never recorded
  t.record(2.0);
  t.record(4.0);
  t.record(3.0);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 9.0);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(t.mean_seconds(), 3.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.0);
}

TEST(ObsTimer, ScopedTimerMeasuresScope) {
  EnabledGuard guard(true);
  obs::Timer t;
  {
    obs::ScopedTimer scoped(t);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.total_seconds(), 0.0);
  EXPECT_GE(t.max_seconds(), t.min_seconds());
}

TEST(ObsTimer, ScopedTimerNoOpWhenDisabled) {
  EnabledGuard guard(false);
  obs::Timer t;
  { obs::ScopedTimer scoped(t); }
  EXPECT_EQ(t.count(), 0u);
}

// ----------------------------------------------------------------- Registry

TEST(ObsRegistry, ReturnsStableInstruments) {
  EnabledGuard guard(true);
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.count");
  obs::Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsRegistry, RejectsKindCollisionsAndEmptyNames) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.timer("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(ObsRegistry, SnapshotAndResetValues) {
  EnabledGuard guard(true);
  obs::Registry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(2.5);
  reg.timer("t").record(1.0);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.timers.at("t").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").bucket_counts.size(), 3u);

  reg.reset_values();
  const auto zero = reg.snapshot();
  EXPECT_EQ(zero.counters.at("c"), 0u);
  EXPECT_DOUBLE_EQ(zero.gauges.at("g"), 0.0);
  EXPECT_EQ(zero.timers.at("t").count, 0u);
  EXPECT_EQ(zero.histograms.at("h").count, 0u);
}

TEST(ObsRegistry, CatalogRegistersEveryBuiltinMetric) {
  obs::Registry reg;
  obs::register_catalog(reg);
  const auto snap = reg.snapshot();
  // Spot-check one name per instrumented module; all must exist at zero.
  EXPECT_EQ(snap.counters.at(obs::metric::kEngineEventsExecuted), 0u);
  EXPECT_EQ(snap.counters.at(obs::metric::kAllocatorCalls), 0u);
  EXPECT_EQ(snap.counters.at(obs::metric::kFleetRequestsEdge), 0u);
  EXPECT_EQ(snap.counters.at(obs::metric::kRetransmitRetransmissions), 0u);
  EXPECT_EQ(snap.counters.at(obs::metric::kBatteryDepletions), 0u);
  EXPECT_TRUE(snap.gauges.count(obs::metric::kEngineMaxQueueDepth));
  EXPECT_TRUE(
      snap.histograms.count(obs::metric::kAllocatorSlotOccupancy));
}

// -------------------------------------------------------------- Concurrency

TEST(ObsConcurrency, ParallelIncrementsAreLossless) {
  EnabledGuard guard(true);
  obs::Registry reg;
  obs::Counter& counter = reg.counter("par.count");
  obs::Gauge& gauge = reg.gauge("par.sum");
  obs::Gauge& peak = reg.gauge("par.max");
  obs::Histogram& hist = reg.histogram("par.hist", {64.0, 128.0, 256.0});

  constexpr std::size_t kTasks = 64;
  constexpr int kRepeats = 1000;
  util::parallel_for(kTasks, [&](std::size_t i) {
    for (int r = 0; r < kRepeats; ++r) {
      counter.inc();
      gauge.add(1.0);
      peak.update_max(static_cast<double>(i));
      hist.observe(static_cast<double>(i));
    }
  });

  EXPECT_EQ(counter.value(), kTasks * kRepeats);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kTasks * kRepeats));
  EXPECT_DOUBLE_EQ(peak.value(), static_cast<double>(kTasks - 1));
  EXPECT_EQ(hist.count(), kTasks * kRepeats);
  // Indices 0..63 all land in the first bucket (<= 64).
  EXPECT_EQ(hist.bucket_count(0), kTasks * kRepeats);
}

TEST(ObsConcurrency, ParallelRegistrationIsSafe) {
  obs::Registry reg;
  util::parallel_for(32, [&](std::size_t i) {
    // Half the tasks race on the same name, half create distinct ones.
    reg.counter("shared.count");
    reg.counter("task." + std::to_string(i % 4) + ".count");
  });
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 5u);  // shared + 4 distinct
}

// ------------------------------------------------------------ Serialization

namespace {

obs::Registry& populated(obs::Registry& reg) {
  EnabledGuard guard(true);
  reg.counter("a.events").inc(3);
  reg.gauge("b.level").set(1.25);
  reg.timer("c.phase").record(0.5);
  reg.timer("c.phase").record(1.5);
  obs::Histogram& h = reg.histogram("d.sizes", {10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(25.0);
  return reg;
}

/// Parses the flat report CSV back into (kind,name,field) -> value.
std::map<std::string, double> parse_csv(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "kind,name,field,value");
  while (std::getline(in, line)) {
    const auto last = line.rfind(',');
    out[line.substr(0, last)] = std::stod(line.substr(last + 1));
  }
  return out;
}

}  // namespace

TEST(ObsReport, CsvRoundTripsEveryScalar) {
  obs::Registry reg;
  const auto fields = parse_csv(obs::to_csv(populated(reg)));
  EXPECT_DOUBLE_EQ(fields.at("counter,a.events,value"), 3.0);
  EXPECT_DOUBLE_EQ(fields.at("gauge,b.level,value"), 1.25);
  EXPECT_DOUBLE_EQ(fields.at("timer,c.phase,count"), 2.0);
  EXPECT_DOUBLE_EQ(fields.at("timer,c.phase,total_s"), 2.0);
  EXPECT_DOUBLE_EQ(fields.at("timer,c.phase,min_s"), 0.5);
  EXPECT_DOUBLE_EQ(fields.at("timer,c.phase,max_s"), 1.5);
  EXPECT_DOUBLE_EQ(fields.at("timer,c.phase,mean_s"), 1.0);
  EXPECT_DOUBLE_EQ(fields.at("histogram,d.sizes,count"), 3.0);
  EXPECT_DOUBLE_EQ(fields.at("histogram,d.sizes,sum"), 45.0);
  EXPECT_DOUBLE_EQ(fields.at("histogram,d.sizes,le:10"), 1.0);
  EXPECT_DOUBLE_EQ(fields.at("histogram,d.sizes,le:20"), 1.0);
  EXPECT_DOUBLE_EQ(fields.at("histogram,d.sizes,overflow"), 1.0);
}

TEST(ObsReport, JsonCarriesEveryInstrument) {
  obs::Registry reg;
  const std::string json = obs::to_json(populated(reg));
  // Structure: all four sections, each populated instrument present with
  // its exact value. (Validity against a real parser is exercised by the
  // bench smoke test reading --metrics-out output.)
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2, \"total_s\": 2"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 10, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for the JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------------------- Determinism

namespace {

/// Runs a small but busy engine scenario (periodic wake-ups, stochastic
/// rescheduling, cancellations) and returns the executed event trace.
std::vector<std::pair<double, int>> run_scenario() {
  sim::Engine engine;
  util::Rng rng(1234);
  std::vector<std::pair<double, int>> trace;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(rng.uniform(0.0, 50.0), [&trace, i](sim::Engine& e) {
      trace.emplace_back(e.now(), i);
    });
  }
  sim::PeriodicTask heartbeat(
      engine, 1.0, 3.0, [&](sim::Engine& e, sim::PeriodicTask& task) {
        trace.emplace_back(e.now(), 100);
        // Stochastic follow-up, sometimes cancelled before it fires.
        const auto id = e.schedule_after(
            rng.uniform(0.5, 2.0),
            [&trace](sim::Engine& eng) { trace.emplace_back(eng.now(), 200); });
        if (rng.chance(0.5)) e.cancel(id);
        if (e.now() > 40.0) task.stop();
      });
  engine.run_until(60.0);
  return trace;
}

}  // namespace

TEST(ObsDeterminism, EnablingMetricsDoesNotChangeEngineTrace) {
  std::vector<std::pair<double, int>> off_trace;
  {
    EnabledGuard guard(false);
    off_trace = run_scenario();
  }
  std::vector<std::pair<double, int>> on_trace;
  {
    EnabledGuard guard(true);
    obs::register_catalog(obs::registry());
    on_trace = run_scenario();
    // The instrumentation did observe the run...
    EXPECT_GT(obs::registry()
                  .snapshot()
                  .counters.at(obs::metric::kEngineEventsExecuted),
              0u);
  }
  // ...and the simulated behaviour is bit-identical anyway.
  ASSERT_EQ(off_trace.size(), on_trace.size());
  EXPECT_EQ(off_trace, on_trace);
}

TEST(ObsDeterminism, EnablingMetricsDoesNotChangeLossyFleetSweep) {
  // The same property for the Section VI simulator under every loss
  // model: the saturation counter used to be incremented inside
  // saturation_factor without an enabled() gate; this pins the counting
  // to instrumented runs and the physics to both.
  beesim::core::FleetParams fleet =
      beesim::core::FleetParams::paper_default();
  fleet.loss = beesim::core::LossConfig::all();
  beesim::core::LargeScaleSimulator sim(fleet);
  const std::vector<int> counts{50, 200, 400};

  std::vector<beesim::core::SweepPoint> off_points;
  {
    EnabledGuard guard(false);
    off_points = sim.sweep(counts, 17, 3);
  }
  std::vector<beesim::core::SweepPoint> on_points;
  {
    EnabledGuard guard(true);
    obs::register_catalog(obs::registry());
    obs::registry().reset_values();
    on_points = sim.sweep(counts, 17, 3);
    const auto snap = obs::registry().snapshot();
    // Fill-first at 400 clients packs slots to max_parallel, so the
    // saturation penalty fires and is counted — but only when enabled.
    EXPECT_GT(snap.counters.at(obs::metric::kLossSaturatedSlots), 0u);
    EXPECT_GT(snap.counters.at(obs::metric::kAllocatorCompactCalls), 0u);
    EXPECT_EQ(snap.counters.at(obs::metric::kFleetSweepPoints),
              counts.size());
  }
  ASSERT_EQ(off_points.size(), on_points.size());
  for (std::size_t i = 0; i < off_points.size(); ++i) {
    EXPECT_EQ(off_points[i].servers_used, on_points[i].servers_used);
    EXPECT_DOUBLE_EQ(off_points[i].lost_clients.mean(),
                     on_points[i].lost_clients.mean());
    EXPECT_DOUBLE_EQ(off_points[i].edge_energy.mean(),
                     on_points[i].edge_energy.mean());
    EXPECT_DOUBLE_EQ(off_points[i].cloud_energy.mean(),
                     on_points[i].cloud_energy.mean());
  }
}

TEST(ObsHistogram, BulkObserveMatchesRepeatedObserve) {
  EnabledGuard guard(true);
  obs::Histogram repeated({2.0, 4.0, 8.0});
  obs::Histogram bulk({2.0, 4.0, 8.0});
  for (int i = 0; i < 1000; ++i) repeated.observe(3.0);
  bulk.observe(3.0, 1000);
  EXPECT_EQ(bulk.count(), repeated.count());
  EXPECT_EQ(bulk.bucket_count(1), repeated.bucket_count(1));
  // 3.0 is exactly representable, so even the sums agree bitwise.
  EXPECT_DOUBLE_EQ(bulk.sum(), repeated.sum());
  bulk.observe(5.0, 0);  // n = 0 is a no-op
  EXPECT_EQ(bulk.count(), 1000u);
}

