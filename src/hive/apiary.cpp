#include "hive/apiary.hpp"

#include <stdexcept>

namespace beesim::hive {

Apiary::Apiary(sim::Engine& engine, const Config& config,
               sim::TraceRecorder* trace)
    : config_(config) {
  if (config_.hive_count < 1)
    throw std::invalid_argument("Apiary: hive_count < 1");
  hives_.reserve(static_cast<std::size_t>(config_.hive_count));
  for (int i = 0; i < config_.hive_count; ++i) {
    hives_.push_back(std::make_unique<SmartBeehive>(
        engine, hive_config(config_, i),
        trace != nullptr && i == 0 ? trace : nullptr));
  }
}

SmartBeehive::Config Apiary::hive_config(const Config& config, int i) {
  SmartBeehive::Config hive_cfg = config.hive;
  // Shared sky: every hive at the site sees the same irradiance and
  // weather realization...
  hive_cfg.energy.irradiance.seed = config.site_seed;
  hive_cfg.weather.seed = config.site_seed ^ 0x5eedULL;
  // ...but device jitter, sensors, and colonies are per-hive.
  hive_cfg.seed = config.site_seed * 1000 + static_cast<std::uint64_t>(i);
  return hive_cfg;
}

std::vector<HiveRun> Apiary::run_parallel(const Config& config,
                                          sim::SimTime horizon,
                                          unsigned threads,
                                          sim::TraceRecorder* trace0) {
  if (config.hive_count < 1)
    throw std::invalid_argument("Apiary: hive_count < 1");
  std::vector<SmartBeehive::Config> configs;
  configs.reserve(static_cast<std::size_t>(config.hive_count));
  for (int i = 0; i < config.hive_count; ++i)
    configs.push_back(hive_config(config, i));
  return run_hives_parallel(configs, horizon, threads, trace0);
}

void Apiary::settle() {
  for (auto& hive : hives_) hive->settle();
}

Apiary::SiteStats Apiary::site_stats() const {
  SiteStats site;
  for (const auto& hive : hives_) {
    const auto stats = hive->stats();
    site.wakeups_attempted += stats.wakeups_attempted;
    site.wakeups_completed += stats.wakeups_completed;
    site.wakeups_skipped += stats.wakeups_skipped;
    site.consumed += stats.consumed;
    site.harvested += stats.harvested;
    site.total_outage += stats.outage_time;
    if (stats.outage_time > 0.0) ++site.hives_with_outage;
  }
  return site;
}

std::vector<std::unique_ptr<Apiary>> paper_deployment(
    sim::Engine& engine, const SmartBeehive::Config& hive_template,
    sim::TraceRecorder* trace) {
  std::vector<std::unique_ptr<Apiary>> sites;
  Apiary::Config cachan;
  cachan.name = "Cachan";
  cachan.hive_count = 2;
  cachan.hive = hive_template;
  cachan.site_seed = 9401;  // postcode-flavoured seeds
  sites.push_back(std::make_unique<Apiary>(engine, cachan, trace));

  Apiary::Config lyon;
  lyon.name = "Lyon";
  lyon.hive_count = 3;
  lyon.hive = hive_template;
  lyon.site_seed = 6900;
  sites.push_back(std::make_unique<Apiary>(engine, lyon, nullptr));
  return sites;
}

}  // namespace beesim::hive
