#include "core/checkpoint.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/catalog.hpp"
#include "util/mmap.hpp"

namespace beesim::core {

const char* to_string(CheckpointKind kind) noexcept {
  switch (kind) {
    case CheckpointKind::kSweep: return "sweep";
    case CheckpointKind::kResilience: return "resilience";
    case CheckpointKind::kFarm: return "farm";
  }
  return "?";
}

namespace {

constexpr char kMagic[8] = {'B', 'E', 'E', 'S', 'I', 'M', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 80;

// Header field offsets (fixed little-endian layout; the format is a
// host-local restart point, not an interchange format — see
// docs/CHECKPOINT.md).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffKind = 12;
constexpr std::size_t kOffPoints = 16;
constexpr std::size_t kOffSeed = 24;
constexpr std::size_t kOffHashHi = 32;
constexpr std::size_t kOffHashLo = 40;
constexpr std::size_t kOffCyclesTarget = 48;
constexpr std::size_t kOffPayloadBytes = 56;
constexpr std::size_t kOffChecksum = 64;

std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer — the same mixer the RNG seeds through.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Word-at-a-time checksum over the whole file image with the checksum
/// field itself read as zero. Four interleaved chains (word i feeds lane
/// i mod 4), folded together at the end: chaining keeps the digest
/// order-sensitive within and across lanes (a swapped or moved word
/// lands in a different lane or a different chain position), while the
/// independent lanes break the serial multiply dependency that made a
/// single chain latency-bound on 100 MB-class farm images.
std::uint64_t checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t lane[4];
  for (std::uint64_t l = 0; l < 4; ++l)
    lane[l] = mix64(static_cast<std::uint64_t>(size) + l);
  std::size_t i = 0;
  std::size_t word = 0;
  for (; i + 8 <= size; i += 8, ++word) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, 8);
    if (i == kOffChecksum) w = 0;
    lane[word & 3] = mix64(lane[word & 3] ^ w);
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    lane[word & 3] = mix64(lane[word & 3] ^ w);
  }
  std::uint64_t h = mix64(lane[0]);
  h = mix64(h ^ lane[1]);
  h = mix64(h ^ lane[2]);
  return mix64(h ^ lane[3]);
}

void put_u32(std::uint8_t* base, std::size_t off, std::uint32_t v) {
  std::memcpy(base + off, &v, sizeof v);
}
void put_u64(std::uint8_t* base, std::size_t off, std::uint64_t v) {
  std::memcpy(base + off, &v, sizeof v);
}
std::uint32_t get_u32(const std::uint8_t* base, std::size_t off) {
  std::uint32_t v = 0;
  std::memcpy(&v, base + off, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* base, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, base + off, sizeof v);
  return v;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  if (obs::enabled()) {
    static auto& rejected =
        obs::registry().counter(obs::metric::kCkptRejected);
    rejected.inc();
  }
  throw std::runtime_error("checkpoint '" + path + "': " + why);
}

/// Sequential column writer/reader over the payload region; every column
/// is one memcpy of count * sizeof(T) bytes in a fixed order.
class Writer {
 public:
  Writer(std::uint8_t* p, std::size_t size) : p_(p), end_(p + size) {}

  template <typename T>
  void column(const std::vector<T>& v) {
    const std::size_t bytes = v.size() * sizeof(T);
    if (p_ + bytes > end_)
      throw std::logic_error("checkpoint: payload overflow");
    if (bytes > 0) std::memcpy(p_, v.data(), bytes);
    p_ += bytes;
  }

  bool full() const noexcept { return p_ == end_; }

 private:
  std::uint8_t* p_;
  std::uint8_t* end_;
};

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t size) : p_(p), end_(p + size) {}

  template <typename T>
  void column(std::vector<T>& v, std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (p_ + bytes > end_)
      throw std::logic_error("checkpoint: payload underflow");
    v.resize(count);
    if (bytes > 0) std::memcpy(v.data(), p_, bytes);
    p_ += bytes;
  }

  bool drained() const noexcept { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// Per-row payload widths: every column's element size summed, in the
// exact serialization order of the write_/read_ functions below.
constexpr std::size_t kStatRowBytes = 8 + 5 * 8;  // n + mean/m2/sum/min/max
constexpr std::size_t kSweepRowBytes =
    3 * 4 + 4 * 8 + 8 + 1 + 5 * kStatRowBytes;
constexpr std::size_t kResilienceRowBytes =
    4 + 1 + 3 * 4 + 4 * 8 + 4 * kStatRowBytes + 6 * 8;
constexpr std::size_t kFarmRowBytes = 8 + 3 * 8 + 3 * 8 + 4 + 3 * 8;

void stat_columns_out(Writer& w, const StatColumns& s) {
  w.column(s.n);
  w.column(s.mean);
  w.column(s.m2);
  w.column(s.sum);
  w.column(s.min);
  w.column(s.max);
}

void stat_columns_in(Reader& r, StatColumns& s, std::size_t count) {
  r.column(s.n, count);
  r.column(s.mean, count);
  r.column(s.m2, count);
  r.column(s.sum, count);
  r.column(s.min, count);
  r.column(s.max, count);
}

struct Header {
  CheckpointKind kind = CheckpointKind::kSweep;
  std::uint64_t points = 0;
  std::uint64_t seed = 0;
  Hash128 params_hash;
  std::int32_t cycles_target = 0;
  std::uint64_t payload_bytes = 0;
};

/// Maps `path`, sizes it for `payload_bytes`, and writes the header; the
/// caller fills the payload and then calls seal() to stamp the checksum.
class FileBuilder {
 public:
  FileBuilder(const std::string& path, const Header& h)
      : file_(util::MappedFile::create(path, kHeaderBytes + h.payload_bytes)) {
    std::uint8_t* base = file_.mutable_data();
    std::memcpy(base + kOffMagic, kMagic, sizeof kMagic);
    put_u32(base, kOffVersion, kVersion);
    put_u32(base, kOffKind, static_cast<std::uint32_t>(h.kind));
    put_u64(base, kOffPoints, h.points);
    put_u64(base, kOffSeed, h.seed);
    put_u64(base, kOffHashHi, h.params_hash.hi);
    put_u64(base, kOffHashLo, h.params_hash.lo);
    put_u32(base, kOffCyclesTarget,
            static_cast<std::uint32_t>(h.cycles_target));
    put_u32(base, kOffCyclesTarget + 4, 0);  // reserved
    put_u64(base, kOffPayloadBytes, h.payload_bytes);
    put_u64(base, kOffChecksum, 0);
    put_u64(base, kOffChecksum + 8, 0);  // reserved
  }

  Writer payload() {
    return Writer(file_.mutable_data() + kHeaderBytes,
                  file_.size() - kHeaderBytes);
  }

  void seal() {
    std::uint8_t* base = file_.mutable_data();
    put_u64(base, kOffChecksum, checksum(base, file_.size()));
    if (obs::enabled()) {
      static auto& saves = obs::registry().counter(obs::metric::kCkptSaves);
      static auto& bytes =
          obs::registry().counter(obs::metric::kCkptBytesWritten);
      saves.inc();
      bytes.inc(file_.size());
    }
    file_.reset();  // unmap flushes the dirty pages to the file
  }

 private:
  util::MappedFile file_;
};

/// Maps `path` and validates everything shared between kinds: magic,
/// version, size arithmetic, and the whole-file checksum.
struct LoadedFile {
  util::MappedFile file;
  Header header;

  Reader payload() const {
    return Reader(file.data() + kHeaderBytes, file.size() - kHeaderBytes);
  }
};

LoadedFile open_checkpoint(const std::string& path) {
  LoadedFile loaded;
  try {
    loaded.file = util::MappedFile::open_readonly(path);
  } catch (const std::runtime_error& e) {
    reject(path, e.what());
  }
  const util::MappedFile& file = loaded.file;
  if (file.size() < kHeaderBytes) reject(path, "truncated header");
  const std::uint8_t* base = file.data();
  if (std::memcmp(base + kOffMagic, kMagic, sizeof kMagic) != 0)
    reject(path, "not a checkpoint file (bad magic)");
  const std::uint32_t version = get_u32(base, kOffVersion);
  if (version != kVersion)
    reject(path, "unsupported version " + std::to_string(version));
  Header& h = loaded.header;
  const std::uint32_t kind = get_u32(base, kOffKind);
  if (kind < 1 || kind > 3)
    reject(path, "unknown kind " + std::to_string(kind));
  h.kind = static_cast<CheckpointKind>(kind);
  h.points = get_u64(base, kOffPoints);
  h.seed = get_u64(base, kOffSeed);
  h.params_hash = {get_u64(base, kOffHashHi), get_u64(base, kOffHashLo)};
  h.cycles_target =
      static_cast<std::int32_t>(get_u32(base, kOffCyclesTarget));
  h.payload_bytes = get_u64(base, kOffPayloadBytes);
  if (file.size() != kHeaderBytes + h.payload_bytes)
    reject(path, "size mismatch (truncated or grown file)");
  const std::uint64_t stored = get_u64(base, kOffChecksum);
  if (stored != checksum(base, file.size()))
    reject(path, "checksum mismatch (corrupted file)");
  if (obs::enabled()) {
    static auto& restores =
        obs::registry().counter(obs::metric::kCkptRestores);
    static auto& bytes = obs::registry().counter(obs::metric::kCkptBytesRead);
    restores.inc();
    bytes.inc(file.size());
  }
  return loaded;
}

void require_kind(const std::string& path, const LoadedFile& loaded,
                  CheckpointKind want, std::size_t row_bytes) {
  const Header& h = loaded.header;
  if (h.kind != want)
    reject(path, std::string("kind is ") + to_string(h.kind) + ", wanted " +
                     to_string(want));
  if (h.payload_bytes != h.points * row_bytes)
    reject(path, "payload size does not match point count");
}

void require_hash(const std::string& path, const LoadedFile& loaded,
                  const Hash128& expected) {
  if (loaded.header.params_hash != expected)
    reject(path, "params hash " + loaded.header.params_hash.to_string() +
                     " does not match this scenario (" +
                     expected.to_string() +
                     ") — refusing to resume under different physics");
}

}  // namespace

// ----------------------------------------------------------------- sweep

void save_checkpoint(const std::string& path, const FleetColumns& columns,
                     const Hash128& params_hash) {
  obs::ScopedTimer timer(obs::metric::kCkptSaveTime);
  Header h;
  h.kind = CheckpointKind::kSweep;
  h.points = columns.size();
  h.seed = columns.seed;
  h.params_hash = params_hash;
  h.cycles_target = columns.cycles_target;
  h.payload_bytes = columns.size() * kSweepRowBytes;
  FileBuilder builder(path, h);
  Writer w = builder.payload();
  w.column(columns.clients);
  w.column(columns.cycles_done);
  w.column(columns.servers_used);
  w.column(columns.rng_s0);
  w.column(columns.rng_s1);
  w.column(columns.rng_s2);
  w.column(columns.rng_s3);
  w.column(columns.rng_cached_normal);
  w.column(columns.rng_has_cached);
  stat_columns_out(w, columns.lost_clients);
  stat_columns_out(w, columns.active_slots);
  stat_columns_out(w, columns.edge_energy);
  stat_columns_out(w, columns.cloud_energy);
  stat_columns_out(w, columns.total_energy);
  if (!w.full()) throw std::logic_error("checkpoint: sweep payload short");
  builder.seal();
}

FleetColumns load_fleet_checkpoint(const std::string& path,
                                   const Hash128& params_hash) {
  obs::ScopedTimer timer(obs::metric::kCkptRestoreTime);
  LoadedFile loaded = open_checkpoint(path);
  require_kind(path, loaded, CheckpointKind::kSweep, kSweepRowBytes);
  require_hash(path, loaded, params_hash);
  FleetColumns columns;
  columns.seed = loaded.header.seed;
  columns.cycles_target = loaded.header.cycles_target;
  const auto count = static_cast<std::size_t>(loaded.header.points);
  Reader r = loaded.payload();
  r.column(columns.clients, count);
  r.column(columns.cycles_done, count);
  r.column(columns.servers_used, count);
  r.column(columns.rng_s0, count);
  r.column(columns.rng_s1, count);
  r.column(columns.rng_s2, count);
  r.column(columns.rng_s3, count);
  r.column(columns.rng_cached_normal, count);
  r.column(columns.rng_has_cached, count);
  stat_columns_in(r, columns.lost_clients, count);
  stat_columns_in(r, columns.active_slots, count);
  stat_columns_in(r, columns.edge_energy, count);
  stat_columns_in(r, columns.cloud_energy, count);
  stat_columns_in(r, columns.total_energy, count);
  if (!r.drained()) throw std::logic_error("checkpoint: sweep payload long");
  return columns;
}

// ------------------------------------------------------------ resilience

void save_checkpoint(const std::string& path,
                     const ResilienceColumns& columns,
                     const Hash128& params_hash) {
  obs::ScopedTimer timer(obs::metric::kCkptSaveTime);
  Header h;
  h.kind = CheckpointKind::kResilience;
  h.points = columns.size();
  h.seed = columns.seed;
  h.params_hash = params_hash;
  h.cycles_target = columns.cycles_target;
  h.payload_bytes = columns.size() * kResilienceRowBytes;
  FileBuilder builder(path, h);
  Writer w = builder.payload();
  w.column(columns.clients);
  w.column(columns.done);
  w.column(columns.servers_used);
  w.column(columns.degraded_cycles);
  w.column(columns.edge_fallback_cycles);
  w.column(columns.fallback_client_cycles);
  w.column(columns.shed_client_cycles);
  w.column(columns.browned_client_cycles);
  w.column(columns.sensor_mute_client_cycles);
  stat_columns_out(w, columns.lost_clients);
  stat_columns_out(w, columns.edge_energy);
  stat_columns_out(w, columns.cloud_energy);
  stat_columns_out(w, columns.total_energy);
  w.column(columns.bytes_generated);
  w.column(columns.bytes_served);
  w.column(columns.bytes_recovered);
  w.column(columns.bytes_dropped);
  w.column(columns.bytes_pending);
  w.column(columns.bytes_lost);
  if (!w.full())
    throw std::logic_error("checkpoint: resilience payload short");
  builder.seal();
}

ResilienceColumns load_resilience_checkpoint(const std::string& path,
                                             const Hash128& params_hash) {
  obs::ScopedTimer timer(obs::metric::kCkptRestoreTime);
  LoadedFile loaded = open_checkpoint(path);
  require_kind(path, loaded, CheckpointKind::kResilience,
               kResilienceRowBytes);
  require_hash(path, loaded, params_hash);
  ResilienceColumns columns;
  columns.seed = loaded.header.seed;
  columns.cycles_target = loaded.header.cycles_target;
  const auto count = static_cast<std::size_t>(loaded.header.points);
  Reader r = loaded.payload();
  r.column(columns.clients, count);
  r.column(columns.done, count);
  r.column(columns.servers_used, count);
  r.column(columns.degraded_cycles, count);
  r.column(columns.edge_fallback_cycles, count);
  r.column(columns.fallback_client_cycles, count);
  r.column(columns.shed_client_cycles, count);
  r.column(columns.browned_client_cycles, count);
  r.column(columns.sensor_mute_client_cycles, count);
  stat_columns_in(r, columns.lost_clients, count);
  stat_columns_in(r, columns.edge_energy, count);
  stat_columns_in(r, columns.cloud_energy, count);
  stat_columns_in(r, columns.total_energy, count);
  r.column(columns.bytes_generated, count);
  r.column(columns.bytes_served, count);
  r.column(columns.bytes_recovered, count);
  r.column(columns.bytes_dropped, count);
  r.column(columns.bytes_pending, count);
  r.column(columns.bytes_lost, count);
  if (!r.drained())
    throw std::logic_error("checkpoint: resilience payload long");
  return columns;
}

// ------------------------------------------------------------------ farm

void save_checkpoint(const std::string& path, const FarmColumns& columns) {
  obs::ScopedTimer timer(obs::metric::kCkptSaveTime);
  Header h;
  h.kind = CheckpointKind::kFarm;
  h.points = columns.size();
  h.seed = 0;
  h.params_hash = {};
  h.cycles_target = 0;
  h.payload_bytes = columns.size() * kFarmRowBytes;
  FileBuilder builder(path, h);
  Writer w = builder.payload();
  w.column(columns.battery_level);
  w.column(columns.wakeups_attempted);
  w.column(columns.wakeups_completed);
  w.column(columns.wakeups_skipped);
  w.column(columns.outage_time);
  w.column(columns.harvested);
  w.column(columns.consumed);
  w.column(columns.regime_transitions);
  w.column(columns.wakeups_degraded);
  w.column(columns.wakeups_muted);
  w.column(columns.events_executed);
  if (!w.full()) throw std::logic_error("checkpoint: farm payload short");
  builder.seal();
}

FarmColumns load_farm_checkpoint(const std::string& path) {
  obs::ScopedTimer timer(obs::metric::kCkptRestoreTime);
  LoadedFile loaded = open_checkpoint(path);
  require_kind(path, loaded, CheckpointKind::kFarm, kFarmRowBytes);
  FarmColumns columns;
  const auto count = static_cast<std::size_t>(loaded.header.points);
  Reader r = loaded.payload();
  r.column(columns.battery_level, count);
  r.column(columns.wakeups_attempted, count);
  r.column(columns.wakeups_completed, count);
  r.column(columns.wakeups_skipped, count);
  r.column(columns.outage_time, count);
  r.column(columns.harvested, count);
  r.column(columns.consumed, count);
  r.column(columns.regime_transitions, count);
  r.column(columns.wakeups_degraded, count);
  r.column(columns.wakeups_muted, count);
  r.column(columns.events_executed, count);
  if (!r.drained()) throw std::logic_error("checkpoint: farm payload long");
  return columns;
}

// --------------------------------------------------------------- helpers

CheckpointInfo inspect_checkpoint(const std::string& path) {
  LoadedFile loaded = open_checkpoint(path);
  CheckpointInfo info;
  info.version = kVersion;
  info.kind = loaded.header.kind;
  info.points = loaded.header.points;
  info.seed = loaded.header.seed;
  info.params_hash = loaded.header.params_hash;
  info.cycles_target = loaded.header.cycles_target;
  info.payload_bytes = loaded.header.payload_bytes;
  return info;
}

namespace {

void count_merge() {
  if (!obs::enabled()) return;
  static auto& merges = obs::registry().counter(obs::metric::kCkptMerges);
  merges.inc();
}

}  // namespace

FleetColumns merge_fleet_checkpoints(const std::vector<std::string>& paths,
                                     const Hash128& params_hash) {
  if (paths.empty())
    throw std::invalid_argument("merge_fleet_checkpoints: no shards");
  FleetColumns merged = load_fleet_checkpoint(paths.front(), params_hash);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    merged.merge_from(load_fleet_checkpoint(paths[i], params_hash));
    count_merge();
  }
  return merged;
}

ResilienceColumns merge_resilience_checkpoints(
    const std::vector<std::string>& paths, const Hash128& params_hash) {
  if (paths.empty())
    throw std::invalid_argument("merge_resilience_checkpoints: no shards");
  ResilienceColumns merged =
      load_resilience_checkpoint(paths.front(), params_hash);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    merged.merge_from(load_resilience_checkpoint(paths[i], params_hash));
    count_merge();
  }
  return merged;
}

Hash128 resilience_campaign_hash(const FleetParams& params,
                                 const fault::FaultPlan& plan,
                                 const ResiliencePolicy& policy) {
  CanonicalHasher h;
  hash_append(h, params);
  hash_append(h, plan);
  hash_append(h, policy);
  return h.digest();
}

}  // namespace beesim::core
