#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

#include "dsp/simd_kernels.hpp"

// Internal per-tier entry points shared between the baseline translation
// unit (simd_kernels.cpp: scalar reference + SSE2) and the AVX2 unit
// (kernels_avx2.cpp, compiled with -mavx2 -mfma -ffp-contract=off). Not
// part of the public kernel API — callers go through dsp::kernel_table().

namespace beesim::dsp::detail {

// Scalar reference tier (always available; the bit-identity oracle).
void sgemm_bias_f32_scalar(std::size_t m, std::size_t n, std::size_t k,
                           const float* a, const float* b, const float* bias,
                           float* c);
void sgemm_bias_bf16_scalar(std::size_t m, std::size_t n, std::size_t k,
                            const std::uint16_t* a, const std::uint16_t* b,
                            const float* bias, float* c);
void sgemm_bias_s8_scalar(std::size_t m, std::size_t n, std::size_t k,
                          const std::int8_t* a, const float* a_scales,
                          const std::int8_t* b, float b_scale,
                          const float* bias, float* c);
void fft_stage_scalar(std::complex<double>* data, std::size_t n,
                      std::size_t len, const std::complex<double>* tw);
void axpy_scalar(double w, const double* in, double* out, std::size_t n);
void welford5_add_scalar(Welford5* s, const double* xs, std::size_t count);

// AVX2 tier (kernels_avx2.cpp; forwards to the scalar tier when that TU
// is built without AVX2 support, e.g. on non-x86 targets).
void sgemm_bias_f32_avx2(std::size_t m, std::size_t n, std::size_t k,
                         const float* a, const float* b, const float* bias,
                         float* c);
void sgemm_bias_bf16_avx2(std::size_t m, std::size_t n, std::size_t k,
                          const std::uint16_t* a, const std::uint16_t* b,
                          const float* bias, float* c);
void sgemm_bias_s8_avx2(std::size_t m, std::size_t n, std::size_t k,
                        const std::int8_t* a, const float* a_scales,
                        const std::int8_t* b, float b_scale,
                        const float* bias, float* c);
void fft_stage_avx2(std::complex<double>* data, std::size_t n,
                    std::size_t len, const std::complex<double>* tw);
void axpy_avx2(double w, const double* in, double* out, std::size_t n);
void welford5_add_avx2(Welford5* s, const double* xs, std::size_t count);

}  // namespace beesim::dsp::detail
