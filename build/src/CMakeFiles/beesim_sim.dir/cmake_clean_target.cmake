file(REMOVE_RECURSE
  "libbeesim_sim.a"
)
