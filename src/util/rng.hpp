#pragma once

#include <cstdint>
#include <limits>

namespace beesim::util {

/// Deterministic pseudo-random generator (xoshiro256** with splitmix64
/// seeding). Every stochastic component in the library takes one of these
/// explicitly so whole simulations replay bit-identically from a seed.
///
/// Satisfies std::uniform_random_bit_generator, so it can drive standard
/// distributions as well as the helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept;

  /// Independent child stream; forked streams do not overlap in practice
  /// because the child is re-seeded through splitmix64.
  Rng fork() noexcept;

  /// Deterministic stream addressed by (seed, stream): the id is folded
  /// into the splitmix64 seeding chain, so stream k of a given seed is
  /// always the same generator no matter which other streams exist or in
  /// what order they are drawn. This is what makes parallel sweeps
  /// bit-identical to serial ones — every sweep point derives its own
  /// stream instead of sharing one sequential generator.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) noexcept;

  /// Complete generator state — the xoshiro words plus the Box-Muller
  /// cache — as a trivially-copyable value. A generator restored from a
  /// saved state continues the exact draw sequence of the original, which
  /// is what lets checkpointed sweeps resume mid-point bit-identically
  /// (core::Checkpoint persists one State per sweep point).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  /// Snapshot of the current state (the next draw is unaffected).
  State state() const noexcept;
  /// A generator that resumes exactly where `state` was captured.
  static Rng from_state(const State& state) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace beesim::util
