// Reproduces Fig 5: queen-detection prediction energy on the Raspberry Pi
// and classification accuracy as functions of the CNN input image side.
//
//  - Energy axis: ResNet18 FLOP cost model calibrated to Table I
//    (94.8 J at 100x100); grows ~quadratically with the side.
//  - Accuracy axis: a real CNN trained from scratch per resolution on the
//    synthetic labeled bee-audio corpus (see DESIGN.md substitutions),
//    plus the SVM trained on mel-band features as the classical baseline.
//
// The paper's corpus is 1647 ten-second clips; the default here is a
// smaller corpus so the bench finishes in tens of seconds — raise
// `clips`/`clip_seconds` to approach the paper's setting.
//
// Usage: fig5_model_energy_accuracy [clips=240] [clip_seconds=1.5]
//          [epochs=8] [seed=2023] [sides=20,40,60,80,100,140]
//          [kernels=fast]   (fast | reference DSP/ML kernel paths)
//          [dispatch=auto]  (auto | scalar | sse2 | avx2 SIMD tier —
//                            bit-identical output under every tier)
//          [precision=f32]  (f32 | bf16 | int8: adds a reduced-precision
//                            inference pass with scaled edge energy and
//                            accuracy deltas vs the f32 reference)

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "audio/dataset.hpp"
#include "bench_common.hpp"
#include "device/calibration.hpp"
#include "dsp/dispatch.hpp"
#include "dsp/kernel_config.hpp"
#include "ml/costmodel.hpp"
#include "ml/metrics.hpp"
#include "ml/network.hpp"
#include "ml/precision.hpp"
#include "ml/svm.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace beesim;

namespace {

std::vector<std::size_t> parse_sides(const std::string& csv) {
  std::vector<std::size_t> sides;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ','))
    sides.push_back(static_cast<std::size_t>(std::stoul(tok)));
  return sides;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  audio::DatasetParams params;
  params.count = static_cast<int>(args.config().get_int("clips", 240));
  params.clip_seconds = args.config().get_double("clip_seconds", 1.5);
  params.seed =
      static_cast<std::uint64_t>(args.config().get_int("seed", 2023));
  const int epochs = static_cast<int>(args.config().get_int("epochs", 8));
  const auto sides = parse_sides(
      args.config().get_string("sides", "20,40,60,80,100,140"));
  const auto kernels = args.config().get_string("kernels", "fast");
  dsp::KernelConfig kcfg = dsp::kernel_config_from_name(kernels);
  kcfg.dispatch =
      dsp::isa_from_name(args.config().get_string("dispatch", "auto"));
  dsp::set_kernel_config(kcfg);
  const ml::Precision precision = ml::precision_from_name(
      args.config().get_string("precision", "f32"));

  bench::banner("Fig 5",
                "prediction energy and accuracy vs image resolution");
  std::printf("\nGenerating %d labeled clips of %.1f s (paper: 1647 x 10 s)"
              " ...\n", params.count, params.clip_seconds);
  const auto ds = audio::generate_queen_dataset(params);
  const auto split = audio::split_dataset(ds, 0.3);

  // SVM baseline on mel-band features (resolution-independent).
  std::vector<std::vector<double>> train_x;
  std::vector<bool> train_y;
  for (auto i : split.train) {
    train_x.push_back(ds.examples[i].features);
    train_y.push_back(ds.examples[i].queen_present);
  }
  ml::StandardScaler scaler;
  scaler.fit(train_x);
  ml::SvmClassifier::Params svm_params;
  svm_params.c = 20.0;     // paper hyperparameters
  svm_params.gamma = 0.01;  // adapted to standardized features
  ml::SvmClassifier svm(svm_params);
  svm.fit(scaler.transform(train_x), train_y);
  std::vector<bool> svm_pred;
  std::vector<bool> svm_true;
  for (auto i : split.test) {
    svm_pred.push_back(
        svm.predict(scaler.transform(ds.examples[i].features)));
    svm_true.push_back(ds.examples[i].queen_present);
  }
  const double svm_acc = ml::confusion(svm_pred, svm_true).accuracy();

  std::printf("SVM baseline (RBF, C=20): accuracy %.3f, %zu support "
              "vectors, prediction energy %.2f J on the Pi\n",
              svm_acc, svm.support_vector_count(),
              // SVM prediction is feature-space only; its edge energy is
              // dominated by the mel front end (Table I row: 98.9 J
              // includes feature extraction).
              98.9);

  // CNN per resolution — the trainings are independent, so they run in
  // parallel (one per core); per-side RNG streams keep the results
  // identical to a serial run.
  std::printf("\nCNN (trained from scratch per resolution, %d epochs, "
              "%u threads):\n\n",
              epochs, util::default_thread_count());
  util::AsciiTable table({"Image side (px)", "ResNet18 GFLOP",
                          "Edge energy (J)", "Cloud energy (J)",
                          "Test accuracy"});
  double acc_at_100 = -1.0;
  const auto cloud = ml::cloud_cnn_compute();
  std::vector<double> accuracy(sides.size(), 0.0);
  std::vector<ml::Network> nets(sides.size());
  std::vector<std::vector<dsp::Matrix>> test_sets(sides.size());
  std::vector<std::vector<std::size_t>> test_label_sets(sides.size());
  util::parallel_for(sides.size(), [&](std::size_t idx) {
    const std::size_t side = sides[idx];
    std::vector<dsp::Matrix> train_images;
    std::vector<std::size_t> train_labels;
    for (auto i : split.train) {
      train_images.push_back(ds.image(i, side));
      train_labels.push_back(ds.examples[i].queen_present ? 1u : 0u);
    }
    util::Rng rng(params.seed ^ side);
    auto net = ml::make_queen_cnn(rng, 8, side);
    ml::TrainOptions opt;
    opt.epochs = epochs;
    opt.learning_rate = 0.06f;
    opt.seed = params.seed + side;
    ml::train_classifier(net, train_images, train_labels, opt);

    std::vector<dsp::Matrix> test_images;
    std::vector<std::size_t> test_labels;
    for (auto i : split.test) {
      test_images.push_back(ds.image(i, side));
      test_labels.push_back(ds.examples[i].queen_present ? 1u : 0u);
    }
    accuracy[idx] = ml::evaluate_classifier(net, test_images, test_labels);
    // Keep the trained nets and test sets so the reduced-precision pass
    // below re-evaluates the same models instead of retraining.
    nets[idx] = std::move(net);
    test_sets[idx] = std::move(test_images);
    test_label_sets[idx] = std::move(test_labels);
  });
  for (std::size_t idx = 0; idx < sides.size(); ++idx) {
    const std::size_t side = sides[idx];
    if (side == 100) acc_at_100 = accuracy[idx];
    const double flops = ml::resnet18_flops(side);
    table.add_row({std::to_string(side),
                   util::AsciiTable::num(flops / 1e9, 3),
                   util::AsciiTable::num(
                       ml::edge_cnn_prediction_energy(side), 1),
                   util::AsciiTable::num(cloud.energy_for(flops), 1),
                   util::AsciiTable::num(accuracy[idx], 3)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nFig 5 anchors:\n");
  bench::check_line("edge CNN energy at 100x100 (Table I anchor)", 94.8,
                    ml::edge_cnn_prediction_energy(100), "J");
  if (acc_at_100 >= 0.0)
    bench::check_line("accuracy at 100x100 (paper: converged, 99%)", 0.99,
                      acc_at_100, "");
  bench::check_line(
      "energy growth factor 100->140 px (quadratic-in-side law)",
      (140.0 * 140.0) / (100.0 * 100.0),
      ml::edge_cnn_prediction_energy(140) /
          ml::edge_cnn_prediction_energy(100),
      "x");
  std::printf(
      "\nNote: the paper states the cost grows as a quadratic function of\n"
      "the number of pixels; convolutional inference is linear in pixels,\n"
      "i.e. quadratic in the image side, which is the law shown above and\n"
      "the reading consistent with their own Fig 5 values.\n");

  if (precision != ml::Precision::kF32) {
    // Reduced-precision inference pass: the same trained nets, evaluated
    // with quantized forward passes. Energy scales by the committed
    // per-precision throughput calibration; accuracy deltas come from the
    // actual quantized evaluations.
    const double scale = ml::precision_throughput_scale(precision);
    std::printf("\nReduced-precision inference (%s, throughput x%.2f vs "
                "f32, dispatch %s):\n\n",
                ml::precision_name(precision), scale,
                dsp::isa_name(dsp::active_isa()));
    ml::set_inference_precision(precision);
    util::AsciiTable ptable({"Image side (px)", "Edge energy (J)",
                             "Accuracy", "Delta vs f32"});
    double pacc_at_100 = -1.0;
    double max_abs_delta = 0.0;
    for (std::size_t idx = 0; idx < sides.size(); ++idx) {
      const std::size_t side = sides[idx];
      const double pacc = ml::evaluate_classifier(nets[idx], test_sets[idx],
                                                  test_label_sets[idx]);
      const double delta = pacc - accuracy[idx];
      max_abs_delta = std::max(max_abs_delta, std::fabs(delta));
      if (side == 100) pacc_at_100 = pacc;
      ptable.add_row({std::to_string(side),
                      util::AsciiTable::num(
                          ml::edge_cnn_prediction_energy(side, precision),
                          1),
                      util::AsciiTable::num(pacc, 3),
                      util::AsciiTable::num(delta, 3)});
    }
    ml::set_inference_precision(ml::Precision::kF32);
    std::printf("%s", ptable.render().c_str());

    std::printf("\nPrecision anchors:\n");
    bench::check_line("edge CNN energy at 100x100 (94.8 J / throughput)",
                      94.8 / scale,
                      ml::edge_cnn_prediction_energy(100, precision), "J");
    if (pacc_at_100 >= 0.0 && acc_at_100 >= 0.0)
      bench::check_line("quantized accuracy at 100x100 (f32 reference)",
                        acc_at_100, pacc_at_100, "");
    std::printf("max |accuracy delta| across sides: %.3f\n", max_abs_delta);
  }
  return 0;
}
