#pragma once

// Shared checkpoint/resume/shard plumbing for the sweep benches
// (docs/CHECKPOINT.md). Every bench that runs a LargeScaleSimulator or
// ResilientFleet campaign parses the same five knobs through
// CheckpointArgs:
//
//   checkpoint=path   save the campaign state here after this run (and,
//                     with resume=1, load it first if it exists)
//   resume=0|1        continue a previous run instead of starting fresh
//   stop_after=N      advance at most N more cycles per point (sweeps) /
//                     N more points (resilience) this run, then save and
//                     exit — the deterministic stand-in for a mid-run kill
//   shard=I shards=S  advance only points with index % S == I (fan one
//                     campaign out across processes, one checkpoint each)
//   merge=a,b,...     fold shard checkpoints in before advancing
//
// The contract the benches inherit from the columnar state: any
// stop/resume/shard/merge composition lands bit-identically on the
// uninterrupted run's numbers, so a CSV written from a resumed campaign
// byte-compares against one from a straight run (scripts/check.sh
// enforces exactly that on fig6).

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "core/checkpoint.hpp"
#include "core/fleet_columns.hpp"
#include "util/config.hpp"

namespace beesim::bench {

struct CheckpointArgs {
  std::string path;
  bool resume = false;
  int stop_after = 0;
  int shard = 0;
  int shards = 1;
  std::vector<std::string> merge;

  /// Anything beyond a plain full run requested?
  bool active() const noexcept {
    return !path.empty() || !merge.empty() || stop_after > 0 || shards > 1;
  }

  static CheckpointArgs parse(util::Config& config) {
    CheckpointArgs a;
    a.path = config.get_string("checkpoint", "");
    a.resume = config.get_bool("resume", false);
    a.stop_after = static_cast<int>(config.get_int("stop_after", 0));
    a.shard = static_cast<int>(config.get_int("shard", 0));
    a.shards = static_cast<int>(config.get_int("shards", 1));
    const std::string merge_csv = config.get_string("merge", "");
    std::string item;
    for (char c : merge_csv) {
      if (c == ',') {
        if (!item.empty()) a.merge.push_back(item);
        item.clear();
      } else {
        item += c;
      }
    }
    if (!item.empty()) a.merge.push_back(item);
    if (a.stop_after < 0)
      throw std::invalid_argument("stop_after must be >= 0");
    if (a.shards < 1 || a.shard < 0 || a.shard >= a.shards)
      throw std::invalid_argument("need shards >= 1 and 0 <= shard < shards");
    if (a.resume && a.path.empty())
      throw std::invalid_argument("resume=1 needs checkpoint=path");
    return a;
  }

  /// Per-panel variant: same knobs, checkpoint/merge paths suffixed so
  /// multi-campaign benches (fig8 panels, resilience rates) keep one
  /// file per campaign.
  CheckpointArgs with_suffix(const std::string& suffix) const {
    CheckpointArgs a = *this;
    if (!a.path.empty()) a.path += suffix;
    for (auto& m : a.merge) m += suffix;
    return a;
  }
};

inline bool file_exists(const std::string& path) {
  struct ::stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// The per-campaign identity check on top of the checkpoint layer's
/// params-hash check: the restored campaign must be the one the bench
/// was invoked for (same seed, per-point cycles, and sweep range).
template <typename Columns>
void require_campaign(const Columns& columns, const std::string& path,
                      const std::vector<int>& counts, std::uint64_t seed,
                      int cycles) {
  bool range_ok = columns.clients.size() == counts.size();
  for (std::size_t i = 0; range_ok && i < counts.size(); ++i)
    range_ok = columns.clients[i] == counts[i];
  if (!range_ok || columns.seed != seed || columns.cycles_target != cycles)
    throw std::runtime_error("checkpoint '" + path +
                             "' holds a different campaign (seed, cycles or "
                             "sweep range differ) — refusing to resume");
}

struct SweepOutcome {
  std::vector<core::SweepPoint> points;
  bool complete = true;
  std::size_t points_done = 0;
  std::int64_t cycles_done = 0;
};

/// Runs (or resumes, shards, merges) one LargeScaleSimulator campaign.
/// With no checkpoint knobs this is exactly sim.sweep(); with them, the
/// columnar advance path — bit-identical either way.
inline SweepOutcome run_sweep(const core::LargeScaleSimulator& sim,
                              const std::vector<int>& counts,
                              std::uint64_t seed, int cycles,
                              unsigned threads, const CheckpointArgs& ck) {
  SweepOutcome out;
  if (!ck.active()) {
    out.points = sim.sweep(counts, seed, cycles, threads);
    out.points_done = counts.size();
    out.cycles_done =
        static_cast<std::int64_t>(counts.size()) * cycles;
    return out;
  }
  const core::Hash128 hash = core::canonical_hash(sim.params());
  core::FleetColumns columns;
  if (ck.resume && file_exists(ck.path)) {
    columns = core::load_fleet_checkpoint(ck.path, hash);
    require_campaign(columns, ck.path, counts, seed, cycles);
    std::printf("  resumed %s: %zu/%zu points done, %lld cycles\n",
                ck.path.c_str(), columns.points_done(), columns.size(),
                static_cast<long long>(columns.cycles_total()));
  } else {
    columns = core::FleetColumns::start(counts, seed, cycles);
  }
  for (const auto& shard_path : ck.merge) {
    core::FleetColumns shard = core::load_fleet_checkpoint(shard_path, hash);
    require_campaign(shard, shard_path, counts, seed, cycles);
    columns.merge_from(shard);
    std::printf("  merged %s\n", shard_path.c_str());
  }
  out.complete =
      sim.advance(columns, ck.stop_after, threads, ck.shard, ck.shards);
  if (!ck.path.empty()) {
    core::save_checkpoint(ck.path, columns, hash);
    std::printf("  checkpoint saved to %s (%zu/%zu points done)\n",
                ck.path.c_str(), columns.points_done(), columns.size());
  }
  out.points = columns.points();
  out.points_done = columns.points_done();
  out.cycles_done = columns.cycles_total();
  return out;
}

struct ResilienceOutcome {
  std::vector<core::ResiliencePoint> points;
  bool complete = true;
  std::size_t points_done = 0;
};

/// ResilientFleet counterpart of run_sweep; stop_after counts whole
/// points (resilience checkpoints are point-granular).
inline ResilienceOutcome run_resilience_sweep(
    const core::ResilientFleet& fleet, const std::vector<int>& counts,
    std::uint64_t seed, int cycles, unsigned threads,
    const CheckpointArgs& ck) {
  ResilienceOutcome out;
  if (!ck.active()) {
    out.points = fleet.sweep(counts, seed, cycles, threads);
    out.points_done = counts.size();
    return out;
  }
  const core::Hash128 hash = core::resilience_campaign_hash(
      fleet.base().params(), fleet.plan(), fleet.policy());
  core::ResilienceColumns columns;
  if (ck.resume && file_exists(ck.path)) {
    columns = core::load_resilience_checkpoint(ck.path, hash);
    require_campaign(columns, ck.path, counts, seed, cycles);
    std::printf("  resumed %s: %zu/%zu points done\n", ck.path.c_str(),
                columns.points_done(), columns.size());
  } else {
    columns = core::ResilienceColumns::start(counts, seed, cycles);
  }
  for (const auto& shard_path : ck.merge) {
    core::ResilienceColumns shard =
        core::load_resilience_checkpoint(shard_path, hash);
    require_campaign(shard, shard_path, counts, seed, cycles);
    columns.merge_from(shard);
    std::printf("  merged %s\n", shard_path.c_str());
  }
  out.complete =
      fleet.advance(columns, ck.stop_after, threads, ck.shard, ck.shards);
  if (!ck.path.empty()) {
    core::save_checkpoint(ck.path, columns, hash);
    std::printf("  checkpoint saved to %s (%zu/%zu points done)\n",
                ck.path.c_str(), columns.points_done(), columns.size());
  }
  out.points = columns.points();
  out.points_done = columns.points_done();
  return out;
}

/// Progress line + the caller's cue to skip final tables/CSVs/anchors
/// when a campaign was deliberately left unfinished (stop_after or a
/// shard run). Returns true when the campaign is complete.
inline bool campaign_complete(const char* what, const SweepOutcome& out,
                              std::size_t total_points) {
  if (out.complete) return true;
  std::printf("\n%s campaign incomplete (%zu/%zu points done) — resume "
              "with resume=1 checkpoint=<path> to finish\n",
              what, out.points_done, total_points);
  return false;
}

}  // namespace beesim::bench
