#include "ml/network.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace beesim::ml {

void Network::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Network::forward(const Tensor& input, bool train) {
  if (layers_.empty()) throw std::logic_error("Network: no layers");
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

void Network::backward(const Tensor& grad) {
  Tensor g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

void Network::sgd_step(float lr, float momentum) {
  for (auto& layer : layers_) layer->sgd_step(lr, momentum);
}

std::size_t Network::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

std::vector<float> Network::parameters() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) layer->append_parameters(flat);
  return flat;
}

void Network::set_parameters(const std::vector<float>& flat) {
  if (flat.size() != parameter_count())
    throw std::invalid_argument("Network::set_parameters: size mismatch");
  const float* cursor = flat.data();
  for (auto& layer : layers_) layer->load_parameters(cursor);
}

Network make_queen_cnn(util::Rng& rng, std::size_t base_channels,
                       std::size_t input_side) {
  if (input_side < 4)
    throw std::invalid_argument("make_queen_cnn: side too small");
  Network net;
  net.add(std::make_unique<Conv2d>(1, base_channels, 3, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2>());
  net.add(std::make_unique<Conv2d>(base_channels, base_channels * 2, 3, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2>());
  net.add(std::make_unique<TimeAvgPool>());
  const std::size_t rows = input_side / 2 / 2;  // after the two pools
  net.add(std::make_unique<Linear>(base_channels * 2 * rows, 2, rng));
  return net;
}

Tensor images_to_tensor(const std::vector<dsp::Matrix>& images) {
  if (images.empty())
    throw std::invalid_argument("images_to_tensor: empty batch");
  const std::size_t h = images.front().rows();
  const std::size_t w = images.front().cols();
  Tensor out({images.size(), 1, h, w});
  float* dst = out.data();
  for (const auto& img : images) {
    if (img.rows() != h || img.cols() != w)
      throw std::invalid_argument("images_to_tensor: ragged batch");
    const double* src = img.data();
    for (std::size_t i = 0; i < h * w; ++i)
      *dst++ = static_cast<float>(src[i]);
  }
  return out;
}

TrainReport train_classifier(Network& net,
                             const std::vector<dsp::Matrix>& images,
                             const std::vector<std::size_t>& labels,
                             const TrainOptions& options) {
  if (images.size() != labels.size() || images.empty())
    throw std::invalid_argument("train_classifier: bad dataset");
  if (options.batch_size == 0 || options.epochs <= 0)
    throw std::invalid_argument("train_classifier: bad options");

  util::Rng rng(options.seed);
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  float lr = options.learning_rate;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }
    float epoch_loss = 0.0f;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += options.batch_size) {
      const std::size_t end =
          std::min(start + options.batch_size, order.size());
      std::vector<dsp::Matrix> batch_images;
      std::vector<std::size_t> batch_labels;
      batch_images.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        batch_images.push_back(images[order[i]]);
        batch_labels.push_back(labels[order[i]]);
      }
      const Tensor input = images_to_tensor(batch_images);
      const Tensor logits = net.forward(input, /*train=*/true);
      Tensor grad;
      epoch_loss +=
          SoftmaxCrossEntropy::loss_and_grad(logits, batch_labels, grad);
      net.backward(grad);
      net.sgd_step(lr, options.momentum);
      ++batches;
    }
    report.epoch_loss.push_back(epoch_loss /
                                static_cast<float>(std::max<std::size_t>(
                                    batches, 1)));
    lr *= options.lr_decay;
  }
  report.final_train_accuracy = static_cast<float>(
      evaluate_classifier(net, images, labels, options.batch_size));
  return report;
}

std::vector<std::size_t> predict_classifier(
    Network& net, const std::vector<dsp::Matrix>& images,
    std::size_t batch_size) {
  if (images.empty() || batch_size == 0)
    throw std::invalid_argument("predict_classifier: bad arguments");
  std::vector<std::size_t> out;
  out.reserve(images.size());
  for (std::size_t start = 0; start < images.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, images.size());
    std::vector<dsp::Matrix> batch(images.begin() +
                                       static_cast<std::ptrdiff_t>(start),
                                   images.begin() +
                                       static_cast<std::ptrdiff_t>(end));
    const Tensor logits = net.forward(images_to_tensor(batch), false);
    const auto preds = SoftmaxCrossEntropy::predict(logits);
    out.insert(out.end(), preds.begin(), preds.end());
  }
  return out;
}

double evaluate_classifier(Network& net,
                           const std::vector<dsp::Matrix>& images,
                           const std::vector<std::size_t>& labels,
                           std::size_t batch_size) {
  if (images.size() != labels.size() || images.empty())
    throw std::invalid_argument("evaluate_classifier: bad dataset");
  const auto preds = predict_classifier(net, images, batch_size);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

}  // namespace beesim::ml
