#include "serve/cache.hpp"

#include <chrono>

#include "obs/catalog.hpp"

namespace beesim::serve {
namespace {

double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PointCache::PointCache(std::size_t shards, std::size_t capacity,
                       double ttl_seconds, ClockFn clock)
    : ttl_seconds_(ttl_seconds > 0.0 ? ttl_seconds : 0.0),
      clock_(clock ? std::move(clock) : ClockFn(steady_now)) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  capacity_ = per_shard_capacity_ * shards;
}

void PointCache::expire_slot(Shard& shard, std::size_t slot) const {
  shard.ring[slot] = {PointKey{}, Kind::kFree, 0};
  shard.free_slots.push_back(slot);
  expirations_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static auto& expirations =
        obs::registry().counter(obs::metric::kServeCacheExpirations);
    expirations.inc();
  }
}

std::size_t PointCache::claim_slot(Shard& shard, const PointKey& key,
                                   Kind kind) {
  // New entries start unreferenced: they earn their second chance on the
  // first lookup. Inserting with the bit set would let a burst of fresh
  // keys force the hand all the way around and evict the hot entry it
  // just cleared (CLOCK degenerates to FIFO at small capacities).
  if (!shard.free_slots.empty()) {
    const std::size_t index = shard.free_slots.back();
    shard.free_slots.pop_back();
    shard.ring[index] = {key, kind, 0};
    return index;
  }
  if (per_shard_capacity_ == 0 || shard.ring.size() < per_shard_capacity_) {
    shard.ring.push_back({key, kind, 0});
    return shard.ring.size() - 1;
  }
  // CLOCK: sweep the hand, granting one second chance per referenced
  // slot; the first unreferenced slot is the victim. Terminates within
  // two laps because every pass clears a reference bit.
  for (;;) {
    Slot& slot = shard.ring[shard.hand];
    const std::size_t index = shard.hand;
    shard.hand = (shard.hand + 1) % shard.ring.size();
    if (slot.referenced != 0) {
      slot.referenced = 0;
      continue;
    }
    if (slot.kind == Kind::kSweep)
      shard.sweep.erase(slot.key);
    else
      shard.resilience.erase(slot.key);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      static auto& evictions =
          obs::registry().counter(obs::metric::kServeCacheEvictions);
      evictions.inc();
    }
    slot = {key, kind, 0};
    return index;
  }
}

bool PointCache::lookup_sweep(const PointKey& key,
                              core::SweepPoint* out) const {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sweep.find(key);
    if (it != shard.sweep.end()) {
      if (expired(it->second.inserted_at, now())) {
        expire_slot(shard, it->second.slot);
        shard.sweep.erase(it);
      } else {
        *out = it->second.point;
        shard.ring[it->second.slot].referenced = 1;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PointCache::insert_sweep(const PointKey& key,
                              const core::SweepPoint& point) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.sweep.count(key) != 0) return;  // first writer wins
  const std::size_t slot = claim_slot(shard, key, Kind::kSweep);
  shard.sweep.emplace(key, Entry<core::SweepPoint>{point, slot, now()});
}

bool PointCache::lookup_resilience(const PointKey& key,
                                   core::ResiliencePoint* out) const {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.resilience.find(key);
    if (it != shard.resilience.end()) {
      if (expired(it->second.inserted_at, now())) {
        expire_slot(shard, it->second.slot);
        shard.resilience.erase(it);
      } else {
        *out = it->second.point;
        shard.ring[it->second.slot].referenced = 1;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PointCache::insert_resilience(const PointKey& key,
                                   const core::ResiliencePoint& point) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.resilience.count(key) != 0) return;  // first writer wins
  const std::size_t slot = claim_slot(shard, key, Kind::kResilience);
  shard.resilience.emplace(key,
                           Entry<core::ResiliencePoint>{point, slot, now()});
}

PointCache::Stats PointCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.expirations = expirations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->sweep.size() + shard->resilience.size();
  }
  return stats;
}

std::vector<std::size_t> PointCache::shard_occupancy() const {
  std::vector<std::size_t> occupancy;
  occupancy.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    occupancy.push_back(shard->sweep.size() + shard->resilience.size());
  }
  return occupancy;
}

}  // namespace beesim::serve
