#pragma once

#include <cstdint>
#include <vector>

#include "core/server.hpp"

namespace beesim::core {

/// How the allocator fills servers and time slots with clients.
enum class FillPolicy {
  /// The paper's policy: fill one slot up to its maximum after another,
  /// one server after another.
  kFillFirst,
  /// Spread clients evenly across all slots of the minimum number of
  /// servers. Under the saturation loss (model A) this avoids the
  /// compounding penalty of packed slots — the ablation DESIGN.md calls
  /// out.
  kBalanced,
  /// Deal clients one at a time across the slots of the minimum number of
  /// servers (round robin). Equivalent occupancy to kBalanced up to
  /// ordering; kept as a distinct, order-preserving policy.
  kRoundRobin,
};

const char* to_string(FillPolicy policy) noexcept;

/// Result of allocating a fleet of clients onto servers: per server, the
/// number of clients assigned to each of its time slots.
struct Allocation {
  struct ServerLoad {
    std::vector<int> slot_clients;  // size <= slots_per_cycle

    int total() const noexcept;
    int active_slots() const noexcept;
  };

  std::vector<ServerLoad> servers;

  int servers_used() const noexcept {
    return static_cast<int>(servers.size());
  }
  int total_clients() const noexcept;
};

/// Allocates `clients` onto as many servers of type `spec` as required
/// ("creates servers based on their features ... allocates every client to
/// one server, and links them to a wake-up time slot"). No slot ever
/// exceeds spec.max_parallel and every client is placed (invariants
/// property-tested).
Allocation allocate(int clients, const ServerSpec& spec, FillPolicy policy);

/// Occupancy-histogram form of an allocation. Instead of one per-slot
/// vector per server, servers with identical slot layouts are grouped
/// into classes, and each class stores its layout as bands of
/// consecutive slots holding the same number of clients. For all three
/// FillPolicy variants the layout is analytically computable, so
/// building this is O(1) in the fleet size — the fast path that lets the
/// Section VI simulator scale to millions of hives — while `expand()`
/// recovers the exact per-slot vectors `allocate()` would produce.
struct CompactAllocation {
  /// `slots` consecutive slots each holding `clients_per_slot` clients.
  /// Zero-occupancy bands are kept where the vector form materializes
  /// empty slots (the spread policies), so expansion is exact.
  struct Band {
    int clients_per_slot = 0;
    int slots = 0;
  };
  /// A run of `servers` identical servers sharing one slot layout.
  struct ServerClass {
    std::int64_t servers = 0;
    std::vector<Band> bands;  // in slot order

    int active_slots_per_server() const noexcept;
    std::int64_t clients_per_server() const noexcept;
  };

  std::vector<ServerClass> classes;  // <= 3 for the built-in policies

  std::int64_t servers_used() const noexcept;
  std::int64_t total_clients() const noexcept;
  std::int64_t active_slots() const noexcept;

  /// Materializes the per-slot vector form — O(servers × slots), for
  /// tests and small fleets. Bit-for-bit equal to what `allocate()`
  /// returns for the same inputs (equivalence-tested per policy).
  Allocation expand() const;
};

/// O(1)-per-cycle equivalent of `allocate()`: same invariants, same
/// layouts, but the result stays in histogram form and never touches
/// memory proportional to the fleet.
CompactAllocation allocate_compact(int clients, const ServerSpec& spec,
                                   FillPolicy policy);

/// Flat, fixed-capacity, trivially-copyable form of CompactAllocation —
/// the columnar occupancy histogram of the fleet hot loop. Each field
/// lives in its own small array (servers per class, bands per class, band
/// occupancy, band width), so building one touches no heap and reading
/// one is a branch-light linear pass: LargeScaleSimulator::simulate_cycle
/// fills a stack-resident layout every cycle instead of materializing the
/// vector-of-vectors CompactAllocation. All three built-in policies
/// produce at most 3 classes of at most 2 bands (proved by the
/// construction in allocator.cpp; equivalence fuzz-tested against
/// allocate()).
struct CompactLayout {
  static constexpr int kMaxClasses = 3;
  static constexpr int kMaxBands = 2;

  int class_count = 0;
  /// Replica count of each server class.
  std::int64_t servers[kMaxClasses] = {0, 0, 0};
  /// Bands per class (<= kMaxBands).
  int band_count[kMaxClasses] = {0, 0, 0};
  /// Clients in each slot of band b of class c.
  int band_clients[kMaxClasses][kMaxBands] = {};
  /// Consecutive slots band b of class c spans.
  int band_slots[kMaxClasses][kMaxBands] = {};

  std::int64_t servers_used() const noexcept;
  std::int64_t total_clients() const noexcept;
  std::int64_t active_slots() const noexcept;

  /// Materializes the vector form (identical to what allocate_compact
  /// returns for the same inputs — the flat path is the single source of
  /// truth for both).
  CompactAllocation to_compact() const;
};

/// Allocation-free core of allocate_compact: fills `out` in place.
/// Same invariants, same layouts, zero heap traffic — the per-cycle fast
/// path of the columnar fleet state (docs/CHECKPOINT.md).
void allocate_compact_into(int clients, const ServerSpec& spec,
                           FillPolicy policy, CompactLayout& out);

}  // namespace beesim::core
