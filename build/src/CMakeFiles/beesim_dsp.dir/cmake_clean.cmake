file(REMOVE_RECURSE
  "CMakeFiles/beesim_dsp.dir/dsp/features.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/features.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/matrix.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/matrix.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/mel.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/mel.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/spectrogram.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/spectrogram.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/stft.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/stft.cpp.o.d"
  "CMakeFiles/beesim_dsp.dir/dsp/window.cpp.o"
  "CMakeFiles/beesim_dsp.dir/dsp/window.cpp.o.d"
  "libbeesim_dsp.a"
  "libbeesim_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
