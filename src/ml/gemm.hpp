#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"

namespace beesim::ml {

/// Row-major single-precision GEMM with a broadcast row bias:
///   C[i, j] = bias[i] + sum_k A[i, k] * B[k, j]
/// A is (m x k), B is (k x n), C is (m x n, fully overwritten).
/// Dispatched at runtime to the best SIMD tier (dsp/dispatch.hpp); every
/// tier is bit-identical to the scalar register-blocked reference. This
/// is the conv fast path's compute kernel.
void sgemm_bias(std::size_t m, std::size_t n, std::size_t k,
                const float* a, const float* b, const float* bias,
                float* c);

/// sgemm_bias with bf16-stored operands (bit patterns per
/// dsp::f32_to_bf16_bits); products and accumulation stay in f32. Used by
/// the reduced-precision inference path (ml/precision.hpp).
void sgemm_bias_bf16(std::size_t m, std::size_t n, std::size_t k,
                     const std::uint16_t* a, const std::uint16_t* b,
                     const float* bias, float* c);

/// Symmetric-int8 sgemm_bias: per-row scales for A (weights), one tensor
/// scale for B (activations), exact i32 accumulation, fused f32
/// dequantization (see dsp::KernelTable::sgemm_bias_s8).
void sgemm_bias_s8(std::size_t m, std::size_t n, std::size_t k,
                   const std::int8_t* a, const float* a_scales,
                   const std::int8_t* b, float b_scale, const float* bias,
                   float* c);

/// Lowers one (channels x height x width) image to the im2col matrix of a
/// stride-1 "same"-padded kernel-sized convolution: row (ic*kernel + ky)
/// *kernel + kx, column y*width + x holds input(ic, y+ky-pad, x+kx-pad)
/// or 0 outside the image. `out` is resized to
/// (channels*kernel*kernel) x (height*width).
void im2col_same(const float* image, std::size_t channels,
                 std::size_t height, std::size_t width, std::size_t kernel,
                 std::vector<float>& out);

}  // namespace beesim::ml
