#pragma once

#include <map>
#include <string>

#include "device/task.hpp"
#include "util/units.hpp"

namespace beesim::device {

/// Static description of a device class: its baseline draws and the task
/// vocabulary it can execute. Profiles are pure data; SimDevice binds one
/// to the event engine.
struct DeviceProfile {
  std::string name;
  util::Watts off_power = 0.0;
  util::Watts sleep_power = 0.0;
  util::Watts idle_power = 0.0;  // for always-on devices (servers, monitor)
  std::map<std::string, TaskSpec> tasks;

  const TaskSpec& task(const std::string& task_name) const;
  bool has_task(const std::string& task_name) const;
};

/// Raspberry Pi 3B+ beehive data recorder, calibrated to Tables I/II.
/// Task vocabulary: wake_collect, svm_inference, cnn_inference,
/// send_results, send_audio, shutdown.
DeviceProfile rpi3bplus_profile();

/// Raspberry Pi Zero WH energy-monitoring node (always on).
/// Task vocabulary: sample_current, send_energy_record.
DeviceProfile rpi_zero_profile();

/// Cloud server (i7-8700K + RTX 2070), calibrated to Table II.
/// Task vocabulary: receive_audio, svm_inference, cnn_inference.
DeviceProfile cloud_server_profile();

}  // namespace beesim::device
