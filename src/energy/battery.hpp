#pragma once

#include "util/units.hpp"

namespace beesim::energy {

using util::Joules;
using util::Seconds;
using util::Watts;

/// Rechargeable battery with round-trip losses, modelling the paper's
/// 20000 mAh / 5 V power bank. Charge and discharge clamp at the capacity
/// bounds and report the accepted/delivered energy so callers can conserve
/// energy exactly (property-tested).
class Battery {
 public:
  struct Params {
    Joules capacity = util::mah_to_joules(20000.0, 5.0);
    double charge_efficiency = 0.92;     // fraction of input stored
    double discharge_efficiency = 0.95;  // fraction of stored delivered
    double initial_soc = 0.8;            // state of charge in [0, 1]
    /// Below this state of charge the protection circuit cuts the output
    /// (power banks refuse deep discharge).
    double cutoff_soc = 0.05;
  };

  Battery();  // default Params
  explicit Battery(const Params& params);

  /// Offers `input` joules; returns the energy actually drawn from the
  /// source (<= input; losses included; 0 when full).
  Joules charge(Joules input);

  /// Requests `wanted` joules at the output; returns the energy actually
  /// delivered (<= wanted; 0 when at/below cutoff).
  Joules discharge(Joules wanted);

  Joules level() const noexcept { return level_; }
  Joules capacity() const noexcept { return params_.capacity; }
  double state_of_charge() const noexcept {
    return level_ / params_.capacity;
  }
  bool cut_off() const noexcept {
    return state_of_charge() <= effective_cutoff_soc();
  }
  /// Maximum energy deliverable right now (down to cutoff, after losses).
  Joules available() const noexcept;

  /// Fault-injection hook (fault::FaultKind::kBatteryDerate): restricts
  /// the usable span to `usable_fraction` of the healthy one by raising
  /// the effective protection cutoff. 1.0 (the default) restores the
  /// healthy behaviour; values must lie in (0, 1]. Counts the
  /// `energy.battery.derate_events` metric when the factor shrinks.
  void set_derating(double usable_fraction);
  double derating() const noexcept { return derating_; }

  /// Cutoff SoC after derating: 1 - usable_fraction * (1 - cutoff_soc).
  /// The healthy case returns the configured cutoff exactly (no float
  /// round-trip), so underated batteries behave bit-identically to the
  /// pre-fault-layer model.
  double effective_cutoff_soc() const noexcept {
    return derating_ == 1.0
               ? params_.cutoff_soc
               : 1.0 - derating_ * (1.0 - params_.cutoff_soc);
  }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  Joules level_;
  double derating_ = 1.0;
};

}  // namespace beesim::energy
