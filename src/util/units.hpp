#pragma once

#include <string>

namespace beesim::util {

// The library works in SI base units throughout: seconds, watts, joules,
// bytes, hertz. These aliases exist to make signatures self-documenting;
// they are intentionally plain doubles so the numerics stay frictionless.
using Seconds = double;
using Watts = double;
using Joules = double;
using Bytes = double;
using Hertz = double;
using Celsius = double;

inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 86400.0;

constexpr Joules watt_hours_to_joules(double wh) noexcept {
  return wh * 3600.0;
}
constexpr double joules_to_watt_hours(Joules j) noexcept { return j / 3600.0; }

/// Battery capacity quoted as mAh at a nominal voltage (the paper's power
/// bank is 20000 mAh at 5 V) converted to joules.
constexpr Joules mah_to_joules(double mah, double volts) noexcept {
  return mah / 1000.0 * volts * 3600.0;
}

/// "1.5 KB", "3.2 MB", ... for logs and tables.
std::string format_bytes(Bytes bytes);

/// "12.3 J", "1.2 kJ", ...
std::string format_joules(Joules joules);

/// "90 s", "5.0 min", "2.0 h", ...
std::string format_duration(Seconds seconds);

}  // namespace beesim::util
