#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "hive/services.hpp"
#include "ml/costmodel.hpp"
#include "net/payload.hpp"

namespace hive = beesim::hive;
namespace cal = beesim::device::cal;
namespace svc = beesim::hive::services;

TEST(Services, QueenDetectionMatchesMeasuredTables) {
  const auto s = svc::queen_detection_cnn();
  EXPECT_NEAR(s.edge_energy(), 94.8, 1e-9);    // Table I
  EXPECT_NEAR(s.cloud_energy(), 108.0, 1e-9);  // Table II
  EXPECT_NEAR(s.edge_time, 37.6, 1e-9);
  EXPECT_NEAR(s.cloud_time, 1.0, 1e-9);
  const auto svm = svc::queen_detection_svm();
  EXPECT_NEAR(svm.edge_energy(), 98.9, 1e-9);
  EXPECT_NEAR(svm.cloud_energy(), 6.3, 1e-9);
}

TEST(Services, UploadSizesComeFromTheCatalog) {
  EXPECT_DOUBLE_EQ(svc::queen_detection_cnn().upload_bytes,
                   beesim::net::catalog::audio_sample().size);
  EXPECT_DOUBLE_EQ(svc::pollen_detection().upload_bytes,
                   5.0 * beesim::net::catalog::entrance_image().size);
  EXPECT_DOUBLE_EQ(svc::swarm_prediction().upload_bytes,
                   beesim::net::catalog::sensor_record().size);
}

TEST(Services, ExtrapolatedCostsAreOrderedSensibly) {
  const auto queen = svc::queen_detection_cnn();
  const auto pollen = svc::pollen_detection();
  const auto counting = svc::bee_counting();
  // Five 224x224 detections dwarf one 100x100 classification.
  EXPECT_GT(pollen.edge_energy(), 5.0 * queen.edge_energy());
  // 160x160 at half the model is cheaper than 224x224 full.
  EXPECT_LT(counting.edge_energy(), pollen.edge_energy());
  EXPECT_GT(counting.edge_energy(), queen.edge_energy());
  // Cloud inference is faster but higher-power on every service.
  for (const auto& s : svc::catalog()) {
    EXPECT_LT(s.cloud_time, s.edge_time) << s.name;
    EXPECT_GT(s.cloud_power, s.edge_power) << s.name;
  }
}

TEST(Services, PeriodicAmortization) {
  const auto swarm = svc::swarm_prediction();
  EXPECT_EQ(swarm.period_cycles, 12);
  EXPECT_NEAR(swarm.edge_energy_per_cycle(), swarm.edge_energy() / 12.0,
              1e-12);
  const auto queen = svc::queen_detection_cnn();
  EXPECT_DOUBLE_EQ(queen.edge_energy_per_cycle(), queen.edge_energy());
}

TEST(Services, CatalogIsCompleteAndUnique) {
  const auto all = svc::catalog();
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].name.empty());
    EXPECT_GT(all[i].edge_time, 0.0) << all[i].name;
    EXPECT_GT(all[i].upload_bytes, 0.0) << all[i].name;
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_NE(all[i].name, all[j].name);
  }
}

TEST(Services, ConsistentWithComputeModels) {
  // The extrapolated services must sit exactly on the calibrated device
  // compute lines (same FLOPs -> same time ratio as the anchors).
  const auto rpi = beesim::ml::rpi_cnn_compute();
  const auto cloud = beesim::ml::cloud_cnn_compute();
  const auto pollen = svc::pollen_detection();
  const double flops = 5.0 * beesim::ml::resnet18_flops(224);
  EXPECT_NEAR(pollen.edge_time, rpi.time_for(flops), 1e-9);
  EXPECT_NEAR(pollen.cloud_time, cloud.time_for(flops), 1e-9);
  // Speedup edge->cloud matches the measured queen-detection speedup
  // (37.6 s -> 1.0 s) since both run through the same models.
  EXPECT_NEAR(pollen.edge_time / pollen.cloud_time, 37.6, 0.1);
}
