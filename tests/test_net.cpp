#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/payload.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace net = beesim::net;
namespace u = beesim::util;

// ------------------------------------------------------------------ Payload

TEST(Payload, AudioSampleSizeMatchesPcmMath) {
  const auto p = net::catalog::audio_sample(10.0, 22050.0);
  EXPECT_DOUBLE_EQ(p.size, 10.0 * 22050.0 * 2.0);  // 441 kB
}

TEST(Payload, ImageSizeIsJpegScale) {
  const auto p = net::catalog::entrance_image(800, 600);
  // 0.25 bit/pixel on 480k pixels = 15 kB.
  EXPECT_DOUBLE_EQ(p.size, 0.25 * 800 * 600 / 8.0);
}

TEST(Payload, RoutineUploadContainsAllProducts) {
  const auto products = net::catalog::routine_upload();
  // 3 audio + 5 images + 1 sensor record.
  EXPECT_EQ(products.size(), 9u);
  int audio = 0;
  int image = 0;
  for (const auto& p : products) {
    if (p.name == "audio_10s") ++audio;
    if (p.name == "image_800x600") ++image;
  }
  EXPECT_EQ(audio, 3);
  EXPECT_EQ(image, 5);
  // Dominated by audio: ~1.3 MB + 75 kB + 0.5 kB.
  EXPECT_NEAR(net::total_size(products), 3 * 441000 + 5 * 15000 + 512, 5000);
}

TEST(Payload, TotalSizeSums) {
  std::vector<net::Payload> v{{"a", 10.0}, {"b", 20.0}};
  EXPECT_DOUBLE_EQ(net::total_size(v), 30.0);
}

// --------------------------------------------------------------------- Link

TEST(Link, ExpectedTimeIsDeterministic) {
  net::Link link;
  const double t = link.expected_transfer_time(1e6);  // 8 Mbit at 8 Mbps
  EXPECT_NEAR(t, link.params().setup_time + link.params().latency + 1.0,
              1e-9);
}

TEST(Link, SampledTimesVaryButStayAboveFloor) {
  net::Link link;
  u::Rng rng(5);
  const double bytes = 1e6;
  const double fastest = link.params().setup_time + link.params().latency +
                         8.0 / 50.0;  // would need 50 Mbps; impossible here
  u::RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    const double t = link.transfer_time(bytes, rng);
    EXPECT_GT(t, fastest);
    stats.add(t);
  }
  EXPECT_GT(stats.stddev(), 0.0);
  EXPECT_NEAR(stats.mean(), link.expected_transfer_time(bytes), 0.3);
}

TEST(Link, ThroughputFloorBoundsWorstCase) {
  net::Link::Params p;
  p.throughput_mean_mbps = 1.0;
  p.throughput_stddev_mbps = 10.0;  // wild variance
  p.throughput_floor_mbps = 0.5;
  net::Link link(p);
  u::Rng rng(6);
  const double worst = p.setup_time + p.latency + 8.0 / 0.5;  // 1 MB at floor
  for (int i = 0; i < 500; ++i)
    EXPECT_LE(link.transfer_time(1e6, rng), worst + 1e-9);
}

TEST(Link, ZeroBytesCostsOnlySetup) {
  net::Link link;
  u::Rng rng(7);
  EXPECT_DOUBLE_EQ(link.transfer_time(0.0, rng),
                   link.params().setup_time + link.params().latency);
}

TEST(Link, RejectsNegativePayloadAndBadParams) {
  net::Link link;
  u::Rng rng(8);
  EXPECT_THROW(link.transfer_time(-1.0, rng), std::invalid_argument);
  EXPECT_THROW(link.expected_transfer_time(-1.0), std::invalid_argument);
  net::Link::Params p;
  p.throughput_mean_mbps = 0.0;
  EXPECT_THROW(net::Link{p}, std::invalid_argument);
}

TEST(Link, PresetsAreOrdered) {
  // The far link must be slower in expectation than the rooftop link.
  const double bytes = 1e6;
  EXPECT_GT(net::Link::wifi_far().expected_transfer_time(bytes),
            net::Link::wifi_80211n().expected_transfer_time(bytes));
}

// ------------------------------------------------------ RetransmittingLink

#include "net/retransmit.hpp"

namespace {

net::RetransmittingLink make_retx_link() {
  return net::RetransmittingLink(net::Link(), net::RetransmittingLink::Params{});
}

}  // namespace

TEST(RetransmittingLink, SingleClientRoughlyMatchesPlainLink) {
  const auto retx = make_retx_link();
  u::Rng rng(31);
  u::RunningStats durations;
  const double bytes = 500000.0;
  for (int i = 0; i < 200; ++i)
    durations.add(retx.transfer(bytes, 1, rng).duration);
  // ~1% chunk loss: within a few percent of the lossless expectation.
  const double lossless = net::Link().expected_transfer_time(bytes);
  EXPECT_NEAR(durations.mean(), lossless, lossless * 0.12);
}

TEST(RetransmittingLink, ConcurrencyStretchesTransfers) {
  // On the deployed ~0.8 Mbps uplink, 35 synchronized clients push the
  // chunk loss toward ~0.7 and transfers stretch by several x.
  net::Link::Params lp;
  lp.throughput_mean_mbps = 0.805;
  lp.throughput_stddev_mbps = 0.0;
  const net::RetransmittingLink retx(net::Link(lp),
                                     net::RetransmittingLink::Params{});
  u::Rng rng(32);
  const double bytes = 500000.0;
  u::RunningStats solo;
  u::RunningStats crowded;
  for (int i = 0; i < 100; ++i) {
    solo.add(retx.transfer(bytes, 1, rng).duration);
    crowded.add(retx.transfer(bytes, 35, rng).duration);
  }
  EXPECT_GT(crowded.mean(), solo.mean() * 1.5);
}

TEST(RetransmittingLink, RetransmissionsScaleWithLoss) {
  net::RetransmittingLink::Params p;
  p.base_loss = 0.2;
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng rng(33);
  int total_retx = 0;
  for (int i = 0; i < 50; ++i)
    total_retx += retx.transfer(400000.0, 1, rng).retransmissions;
  // ~25 chunks per transfer at 20% loss -> about 6 retries per transfer.
  EXPECT_GT(total_retx, 100);
}

TEST(RetransmittingLink, GivesUpAfterMaxAttempts) {
  net::RetransmittingLink::Params p;
  p.base_loss = 0.9;
  p.max_attempts_per_chunk = 2;
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng rng(34);
  int failures = 0;
  for (int i = 0; i < 50; ++i)
    if (!retx.transfer(100000.0, 1, rng).completed) ++failures;
  EXPECT_GT(failures, 40);  // 90% loss with 2 attempts almost always fails
}

TEST(RetransmittingLink, ExpectedStretchIsPositiveAndModest) {
  // The paper uses 1.5 s/client for the full ~1.4 MB routine upload; the
  // collision model on the deployed ~0.8 Mbps uplink lands in the same
  // order of magnitude (the linearized estimate undershoots the true
  // compounding effect at high concurrency).
  net::Link::Params lp;
  lp.throughput_mean_mbps = 0.805;
  const net::RetransmittingLink retx(net::Link(lp),
                                     net::RetransmittingLink::Params{});
  const double stretch = retx.expected_stretch_per_client(1400000.0);
  EXPECT_GT(stretch, 0.05);
  EXPECT_LT(stretch, 5.0);
}

TEST(RetransmittingLink, RejectsInvalidUse) {
  const auto retx = make_retx_link();
  u::Rng rng(35);
  EXPECT_THROW(retx.transfer(-1.0, 1, rng), std::invalid_argument);
  EXPECT_THROW(retx.transfer(100.0, 0, rng), std::invalid_argument);
  net::RetransmittingLink::Params bad;
  bad.base_loss = 1.5;
  EXPECT_THROW(net::RetransmittingLink(net::Link(), bad),
               std::invalid_argument);
  net::RetransmittingLink::Params bad_backoff;
  bad_backoff.backoff_multiplier = 0.5;
  EXPECT_THROW(net::RetransmittingLink(net::Link(), bad_backoff),
               std::invalid_argument);
  net::RetransmittingLink::Params bad_jitter;
  bad_jitter.backoff_jitter = 1.5;
  EXPECT_THROW(net::RetransmittingLink(net::Link(), bad_jitter),
               std::invalid_argument);
}

TEST(RetransmittingLink, ZeroByteTransferCompletes) {
  const auto retx = make_retx_link();
  u::Rng rng(36);
  const auto r = retx.transfer(0.0, 1, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.outcome, net::TransferOutcome::kCompleted);
  EXPECT_EQ(r.chunks, 1);  // the empty payload still costs one exchange
  EXPECT_GT(r.duration, 0.0);
  EXPECT_DOUBLE_EQ(r.backoff_wait, 0.0);
}

TEST(RetransmittingLink, ExhaustionUnderMaxLossAborts) {
  net::RetransmittingLink::Params p;
  p.base_loss = 0.95;  // the chunk-loss cap: worst representable channel
  p.max_attempts_per_chunk = 3;
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng rng(37);
  int aborted = 0;
  for (int i = 0; i < 100; ++i) {
    const auto r = retx.transfer(200000.0, 1, rng);
    if (!r.completed) {
      EXPECT_EQ(r.outcome, net::TransferOutcome::kAborted);
      EXPECT_FALSE(r.timed_out());
      ++aborted;
    }
  }
  EXPECT_GT(aborted, 90);  // 0.95^3 per chunk over ~13 chunks: near-certain
}

TEST(RetransmittingLink, BackoffDeterministicAcrossIdenticalSeeds) {
  net::RetransmittingLink::Params p =
      net::RetransmittingLink::Params::resilient();
  p.base_loss = 0.3;
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng a(40);
  u::Rng b(40);
  for (int i = 0; i < 20; ++i) {
    const auto ra = retx.transfer(300000.0, 5, a);
    const auto rb = retx.transfer(300000.0, 5, b);
    EXPECT_DOUBLE_EQ(ra.duration, rb.duration);
    EXPECT_DOUBLE_EQ(ra.backoff_wait, rb.backoff_wait);
    EXPECT_EQ(ra.retransmissions, rb.retransmissions);
    EXPECT_EQ(ra.outcome, rb.outcome);
  }
}

TEST(RetransmittingLink, BackoffDelaysGrowThenTruncate) {
  const net::RetransmittingLink retx(
      net::Link(), net::RetransmittingLink::Params::resilient());
  EXPECT_DOUBLE_EQ(retx.backoff_delay(1), 0.05);
  EXPECT_DOUBLE_EQ(retx.backoff_delay(2), 0.10);
  EXPECT_DOUBLE_EQ(retx.backoff_delay(3), 0.20);
  EXPECT_DOUBLE_EQ(retx.backoff_delay(20), 5.0);  // capped at backoff_max
  EXPECT_DOUBLE_EQ(retx.backoff_delay(0), 0.0);
}

TEST(RetransmittingLink, DefaultParamsNeverBackOff) {
  // The seed contract: without opting into Params::resilient(), retries
  // cost no extra wall-clock and draw no extra randomness.
  net::RetransmittingLink::Params p;
  p.base_loss = 0.4;
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng rng(41);
  for (int i = 0; i < 30; ++i)
    EXPECT_DOUBLE_EQ(retx.transfer(200000.0, 1, rng).backoff_wait, 0.0);
  EXPECT_DOUBLE_EQ(retx.backoff_delay(3), 0.0);
}

TEST(RetransmittingLink, TimeoutBudgetReportsTimedOut) {
  net::RetransmittingLink::Params p;
  p.timeout_budget = 0.5;  // far below a 10 MB transfer at ~8 Mbps
  const net::RetransmittingLink retx(net::Link(), p);
  u::Rng rng(42);
  const auto r = retx.transfer(1.0e7, 1, rng);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.timed_out());
  EXPECT_EQ(r.outcome, net::TransferOutcome::kTimedOut);
  EXPECT_STREQ(net::to_string(r.outcome), "timed_out");
}

TEST(RetransmittingLink, DegradedBandwidthStretchesDuration) {
  const auto retx = make_retx_link();
  u::Rng a(43);
  u::Rng b(43);  // same stream: identical chunk outcomes, scaled timing
  const auto full = retx.transfer(500000.0, 1, 1.0, a);
  const auto half = retx.transfer(500000.0, 1, 0.5, b);
  EXPECT_GT(half.duration, full.duration);
  EXPECT_EQ(half.retransmissions, full.retransmissions);
  u::Rng rng(44);
  EXPECT_THROW(retx.transfer(100.0, 1, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(retx.transfer(100.0, 1, 1.5, rng), std::invalid_argument);
}
