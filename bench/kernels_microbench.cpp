// google-benchmark microbenchmarks for the substrate kernels: FFT, mel
// spectrogram, CNN forward pass, SVM kernel evaluation, the analytic
// large-scale simulator, and the discrete-event engine. These are the
// hot paths of every figure bench; regressions here make the reproduction
// slow long before they make it wrong.

#include <benchmark/benchmark.h>

#include <vector>

#include "audio/synth.hpp"
#include "core/network_sim.hpp"
#include "dsp/dispatch.hpp"
#include "dsp/fft.hpp"
#include "dsp/kernel_config.hpp"
#include "dsp/mel.hpp"
#include "dsp/simd_kernels.hpp"
#include "dsp/spectrogram.hpp"
#include "ml/network.hpp"
#include "ml/precision.hpp"
#include "ml/svm.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace beesim;

/// Pins the global kernel config for one benchmark body and restores the
/// fast default afterwards, so fixture order never leaks a config.
class ScopedKernels {
 public:
  explicit ScopedKernels(const dsp::KernelConfig& kc) {
    dsp::set_kernel_config(kc);
  }
  ~ScopedKernels() { dsp::set_kernel_config(dsp::KernelConfig::fast()); }
};

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<dsp::Complex> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(512)->Arg(2048)->Arg(8192);

// Planned real FFT vs the reference path (full complex FFT of the real
// signal, recomputed twiddles). Same output bins, ~4x less work expected:
// 2x from the half-size transform, the rest from the tables.
void BM_RealFftPlanned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.normal();
  const dsp::RealFftPlan plan(n);
  std::vector<dsp::Complex> out(plan.bins());
  std::vector<dsp::Complex> scratch(plan.scratch_size());
  for (auto _ : state) {
    plan.transform(signal.data(), out.data(), scratch.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RealFftPlanned)->Arg(512)->Arg(2048)->Arg(8192);

void BM_RealFftReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.normal();
  for (auto _ : state) {
    auto spec = dsp::rfft(signal);
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RealFftReference)->Arg(512)->Arg(2048)->Arg(8192);

void BM_MelSpectrogram(benchmark::State& state) {
  const double seconds = static_cast<double>(state.range(0)) / 10.0;
  audio::BeeAudioSynth synth;
  util::Rng rng(2);
  const auto clip = synth.synthesize(true, seconds, rng);
  dsp::MelSpectrogram mel;
  for (auto _ : state) {
    auto m = mel.compute(clip);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_MelSpectrogram)->Arg(5)->Arg(10)->Arg(30);  // 0.5 / 1 / 3 s

// Full mel pipeline with every fast-path kernel disabled — the pre-plan
// baseline, kept runnable so the speedup in EXPERIMENTS.md can always be
// re-measured on the current tree.
void BM_MelSpectrogramReference(benchmark::State& state) {
  ScopedKernels scoped(dsp::KernelConfig::reference());
  const double seconds = static_cast<double>(state.range(0)) / 10.0;
  audio::BeeAudioSynth synth;
  util::Rng rng(2);
  const auto clip = synth.synthesize(true, seconds, rng);
  dsp::MelSpectrogram mel;
  for (auto _ : state) {
    auto m = mel.compute(clip);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_MelSpectrogramReference)->Arg(5)->Arg(10)->Arg(30);

// Banded vs dense filterbank apply, isolated from the STFT: 128 mel
// bands over a 1-second spectrogram.
void BM_FilterbankBanded(benchmark::State& state) {
  util::Rng rng(6);
  const auto fb = dsp::mel_filterbank(128, 2048, 22050.0);
  dsp::Matrix power(fb.cols(), 44);
  for (std::size_t r = 0; r < power.rows(); ++r)
    for (std::size_t c = 0; c < power.cols(); ++c)
      power(r, c) = rng.uniform(0.0, 10.0);
  const dsp::BandedFilterbank banded(fb);
  for (auto _ : state) {
    auto m = banded.apply(power);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["nnz"] = static_cast<double>(banded.nonzeros());
}
BENCHMARK(BM_FilterbankBanded);

void BM_FilterbankDense(benchmark::State& state) {
  util::Rng rng(6);
  const auto fb = dsp::mel_filterbank(128, 2048, 22050.0);
  dsp::Matrix power(fb.cols(), 44);
  for (std::size_t r = 0; r < power.rows(); ++r)
    for (std::size_t c = 0; c < power.cols(); ++c)
      power(r, c) = rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    auto m = dsp::apply_filterbank(fb, power);
    benchmark::DoNotOptimize(m.data());
  }
  state.counters["dense"] = static_cast<double>(fb.rows() * fb.cols());
}
BENCHMARK(BM_FilterbankDense);

void BM_AudioSynthesis(benchmark::State& state) {
  audio::BeeAudioSynth synth;
  util::Rng rng(3);
  const double seconds = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    auto clip = synth.synthesize(false, seconds, rng);
    benchmark::DoNotOptimize(clip.data());
  }
}
BENCHMARK(BM_AudioSynthesis)->Arg(10)->Arg(100);

void BM_CnnForward(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  auto net = ml::make_queen_cnn(rng, 8, side);
  ml::Tensor input({1, 1, side, side});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    auto out = net.forward(input, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CnnForward)->Arg(20)->Arg(50)->Arg(100);

// CNN forward with the naive 6-deep convolution loop (gemm_conv off) —
// the GEMM comparison baseline.
void BM_CnnForwardNaive(benchmark::State& state) {
  ScopedKernels scoped(dsp::KernelConfig::reference());
  const auto side = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  auto net = ml::make_queen_cnn(rng, 8, side);
  ml::Tensor input({1, 1, side, side});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    auto out = net.forward(input, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CnnForwardNaive)->Arg(20)->Arg(50)->Arg(100);

// GEMM microkernels behind the runtime CPU dispatch, on the conv-like
// shape of the 100x100 queen CNN's widest layer (m = output channels,
// n = output pixels, k = in_channels * 3 * 3 after im2col). One shape,
// every tier and precision: the tier ratios justify the dispatch layer,
// the precision ratios are the measured throughput scales committed in
// ml::precision_throughput_scale (scripts/check.sh --bench records both
// in BENCH_des.json).
constexpr std::size_t kGemmM = 16;
constexpr std::size_t kGemmN = 2500;
constexpr std::size_t kGemmK = 144;

struct GemmOperands {
  std::vector<float> a, b, bias, c;
  GemmOperands() : a(kGemmM * kGemmK), b(kGemmK * kGemmN), bias(kGemmM),
                   c(kGemmM * kGemmN) {
    util::Rng rng(9);
    for (auto& v : a) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : bias) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
};

void gemm_f32_tier(benchmark::State& state, dsp::IsaTier tier) {
  GemmOperands ops;
  const dsp::KernelTable& kt = dsp::kernel_table(tier);
  for (auto _ : state) {
    kt.sgemm_bias(kGemmM, kGemmN, kGemmK, ops.a.data(), ops.b.data(),
                  ops.bias.data(), ops.c.data());
    benchmark::DoNotOptimize(ops.c.data());
  }
  // FLOPs (mul + add per element-product) so tiers compare as flops/s.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * kGemmM * kGemmN *
                                                    kGemmK));
}

void BM_GemmF32Scalar(benchmark::State& state) {
  gemm_f32_tier(state, dsp::IsaTier::kScalar);
}
BENCHMARK(BM_GemmF32Scalar);

void BM_GemmF32Sse2(benchmark::State& state) {
  gemm_f32_tier(state, dsp::IsaTier::kSse2);
}
BENCHMARK(BM_GemmF32Sse2);

void BM_GemmF32Avx2(benchmark::State& state) {
  // On CPUs without AVX2 the table degrades to the best supported tier —
  // the `isa` counter records what actually ran.
  state.counters["isa"] =
      static_cast<double>(dsp::detected_isa() >= dsp::IsaTier::kAvx2 ? 2
                          : dsp::detected_isa() == dsp::IsaTier::kSse2 ? 1
                                                                       : 0);
  gemm_f32_tier(state, dsp::IsaTier::kAvx2);
}
BENCHMARK(BM_GemmF32Avx2);

void BM_GemmBf16(benchmark::State& state) {
  GemmOperands ops;
  const auto a16 = ml::to_bf16(ops.a.data(), ops.a.size());
  const auto b16 = ml::to_bf16(ops.b.data(), ops.b.size());
  const dsp::KernelTable& kt = dsp::kernel_table();
  for (auto _ : state) {
    kt.sgemm_bias_bf16(kGemmM, kGemmN, kGemmK, a16.data(), b16.data(),
                       ops.bias.data(), ops.c.data());
    benchmark::DoNotOptimize(ops.c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * kGemmM * kGemmN *
                                                    kGemmK));
}
BENCHMARK(BM_GemmBf16);

void BM_GemmInt8(benchmark::State& state) {
  GemmOperands ops;
  const auto qa = ml::quantize_rows_s8(ops.a.data(), kGemmM, kGemmK);
  const auto qb = ml::quantize_tensor_s8(ops.b.data(), ops.b.size());
  const dsp::KernelTable& kt = dsp::kernel_table();
  for (auto _ : state) {
    kt.sgemm_bias_s8(kGemmM, kGemmN, kGemmK, qa.values.data(),
                     qa.scales.data(), qb.values.data(), qb.scale,
                     ops.bias.data(), ops.c.data());
    benchmark::DoNotOptimize(ops.c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * kGemmM * kGemmN *
                                                    kGemmK));
}
BENCHMARK(BM_GemmInt8);

void BM_SvmDecision(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<bool> y;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(128);
    const bool cls = i % 2 == 0;
    for (auto& v : row) v = rng.normal(cls ? 1.0 : -1.0, 1.0);
    x.push_back(std::move(row));
    y.push_back(cls);
  }
  ml::SvmClassifier::Params p;
  p.gamma = 0.01;
  ml::SvmClassifier svm(p);
  svm.fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm.decision(x[0]));
  }
  state.counters["support_vectors"] =
      static_cast<double>(svm.support_vector_count());
}
BENCHMARK(BM_SvmDecision);

void BM_LargeScaleCycle(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  for (auto _ : state) {
    auto r = sim.simulate_ideal_cycle(clients);
    benchmark::DoNotOptimize(r.cloud_energy);
  }
}
BENCHMARK(BM_LargeScaleCycle)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EngineEvents(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::uint64_t i = 0; i < events; ++i)
      engine.schedule_at(static_cast<double>(i), [](sim::Engine&) {});
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineEvents)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
