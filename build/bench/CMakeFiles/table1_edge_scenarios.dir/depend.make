# Empty dependencies file for table1_edge_scenarios.
# This may be replaced when dependencies are built.
