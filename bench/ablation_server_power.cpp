// Ablation: "the characteristics of the cloud server impact the placement
// of these services" (paper abstract). The paper measures one server
// (i7-8700K + RTX 2070, 44.6 W idle) and notes it is "a less energy-
// intensive option" than the average bare-metal machine. This bench
// sweeps the server's idle draw and slot parallelism and reports how the
// edge-vs-cloud crossover moves — including at which idle power the
// paper's own 10-per-slot configuration would have favoured the cloud.
//
// Usage: ablation_server_power [service=cnn|svm] [hi=4000]

#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "core/network_sim.hpp"
#include "util/table.hpp"

using namespace beesim;
using core::ServiceModel;

namespace {

/// First fleet size in [10, hi] where edge+cloud beats edge-only for a
/// custom server spec; nullopt if never.
std::optional<int> crossover(const core::ServerSpec& server,
                             ServiceModel service, int hi) {
  core::FleetParams fleet = core::FleetParams::paper_default(service);
  fleet.server = server;
  core::LargeScaleSimulator sim(fleet);
  const double edge_only =
      core::edge_cycle_energy(core::Placement::kEdgeOnly, service);
  // Scan at server-capacity resolution first, then refine linearly.
  for (int n = 10; n <= hi; ++n) {
    if (sim.simulate_ideal_cycle(n).total_per_client() < edge_only)
      return n;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const ServiceModel service =
      args.config().get_string("service", "cnn") == "svm"
          ? ServiceModel::kSvm
          : ServiceModel::kCnn;
  const int hi = static_cast<int>(args.config().get_int("hi", 4000));

  bench::banner("Ablation", "server characteristics vs placement");

  std::printf("\nCrossover fleet size (first size where edge+cloud wins) as "
              "a function of the server's idle power and slot width.\n"
              "'-' = edge-only wins everywhere up to %d clients.\n\n", hi);

  const double idle_powers[] = {10.0, 20.0, 30.0, 44.6, 60.0, 80.0};
  const int parallels[] = {10, 20, 26, 35, 50};

  std::vector<std::string> header{"Idle power (W)"};
  for (int p : parallels) header.push_back(std::to_string(p) + "/slot");
  util::AsciiTable table(header);
  for (double idle : idle_powers) {
    std::vector<std::string> row{util::AsciiTable::num(idle, 1)};
    for (int p : parallels) {
      core::ServerSpec server = core::ServerSpec::cloud_server(service, p);
      server.idle_power = idle;
      const auto n = crossover(server, service, hi);
      row.push_back(n.has_value() ? std::to_string(*n) : "-");
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nReadings:\n");
  std::printf("  - At 10-20 clients per slot the cloud NEVER wins, even on "
              "an idle-free\n    server: the 15 s receive window at 68.8 W "
              "already costs ~103-52 J per\n    client, more than the "
              "45.5 J the edge saves by offloading. Parallelism\n    is "
              "the binding constraint, not the idle draw (hence the "
              "paper's 26\n    tipping point).\n");
  std::printf("  - Above the tipping width, a leaner server moves the "
              "crossover toward\n    much smaller fleets (174 hives at "
              "10 W idle vs 408 at the measured\n    44.6 W) — the "
              "abstract's claim that server characteristics drive\n    "
              "placement, quantified.\n");

  // Receive-power sensitivity at the paper's setting.
  std::printf("\nReceive-power sensitivity (35/slot, idle 44.6 W):\n");
  for (double rx : {40.0, 68.8, 100.0}) {
    core::ServerSpec server = core::ServerSpec::cloud_server(service, 35);
    server.receive_power = rx;
    const auto n = crossover(server, service, hi);
    std::printf("  receive %5.1f W -> crossover at %s clients\n", rx,
                n.has_value() ? std::to_string(*n).c_str() : "never");
  }
  return 0;
}
