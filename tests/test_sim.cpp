#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace sim = beesim::sim;

// ------------------------------------------------------------------- Engine

TEST(Engine, StartsAtTimeZero) {
  sim::Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&](sim::Engine&) { order.push_back(3); });
  engine.schedule_at(1.0, [&](sim::Engine&) { order.push_back(1); });
  engine.schedule_at(2.0, [&](sim::Engine&) { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  sim::Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&, i](sim::Engine&) { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesToEventTime) {
  sim::Engine engine;
  double seen = -1.0;
  engine.schedule_at(7.5, [&](sim::Engine& e) { seen = e.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Engine, RunUntilStopsAtHorizonAndAdvancesClock) {
  sim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&](sim::Engine&) { ++fired; });
  engine.schedule_at(10.0, [&](sim::Engine&) { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtHorizonBoundaryRuns) {
  sim::Engine engine;
  bool fired = false;
  engine.schedule_at(5.0, [&](sim::Engine&) { fired = true; });
  engine.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, ScheduleAfterIsRelative) {
  sim::Engine engine;
  double seen = -1.0;
  engine.schedule_at(2.0, [&](sim::Engine& e) {
    e.schedule_after(3.0, [&](sim::Engine& e2) { seen = e2.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, RejectsSchedulingInThePast) {
  sim::Engine engine;
  engine.schedule_at(1.0, [](sim::Engine&) {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(0.5, [](sim::Engine&) {}),
               std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [](sim::Engine&) {}),
               std::invalid_argument);
}

TEST(Engine, RejectsNullCallback) {
  sim::Engine engine;
  EXPECT_THROW(engine.schedule_at(1.0, sim::Engine::Callback{}),
               std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(1.0, [&](sim::Engine&) { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CountsExecutedEvents) {
  sim::Engine engine;
  for (int i = 0; i < 10; ++i)
    engine.schedule_at(static_cast<double>(i), [](sim::Engine&) {});
  engine.run();
  EXPECT_EQ(engine.executed(), 10u);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  sim::Engine engine;
  int depth = 0;
  std::function<void(sim::Engine&)> chain = [&](sim::Engine& e) {
    if (++depth < 5) e.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

// ------------------------------------------------------------- PeriodicTask

TEST(PeriodicTask, FiresAtFixedInterval) {
  sim::Engine engine;
  std::vector<double> times;
  sim::PeriodicTask task(engine, 10.0, 5.0,
                         [&](sim::Engine& e, sim::PeriodicTask&) {
                           times.push_back(e.now());
                         });
  engine.run_until(26.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(PeriodicTask, StopHaltsFutureFirings) {
  sim::Engine engine;
  int count = 0;
  sim::PeriodicTask task(engine, 1.0, 1.0,
                         [&](sim::Engine&, sim::PeriodicTask& t) {
                           if (++count == 3) t.stop();
                         });
  engine.run_until(100.0);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(task.stopped());
}

TEST(PeriodicTask, DestructorCancelsPending) {
  sim::Engine engine;
  int count = 0;
  {
    sim::PeriodicTask task(engine, 1.0, 1.0,
                           [&](sim::Engine&, sim::PeriodicTask&) { ++count; });
  }
  engine.run_until(10.0);
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTask, PeriodCanChangeMidRun) {
  sim::Engine engine;
  std::vector<double> times;
  sim::PeriodicTask task(engine, 1.0, 1.0,
                         [&](sim::Engine& e, sim::PeriodicTask& t) {
                           times.push_back(e.now());
                           t.set_period(10.0);
                         });
  engine.run_until(25.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 11.0, 21.0}));
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  sim::Engine engine;
  EXPECT_THROW(sim::PeriodicTask(engine, 0.0, 0.0,
                                 [](sim::Engine&, sim::PeriodicTask&) {}),
               std::invalid_argument);
}

// ------------------------------------------------------------------- Series

TEST(Series, ZeroOrderHoldSampling) {
  sim::Series s("p");
  s.append(0.0, 1.0);
  s.append(10.0, 3.0);
  EXPECT_DOUBLE_EQ(s.sample_at(-1.0), 0.0);  // before first sample
  EXPECT_DOUBLE_EQ(s.sample_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(s.sample_at(100.0), 3.0);
}

TEST(Series, IntegrateIsEnergyForPowerSeries) {
  sim::Series s("p");
  s.append(0.0, 2.0);   // 2 W for 10 s = 20 J
  s.append(10.0, 0.5);  // 0.5 W for 10 s = 5 J
  EXPECT_DOUBLE_EQ(s.integrate(0.0, 20.0), 25.0);
  EXPECT_DOUBLE_EQ(s.mean(0.0, 20.0), 1.25);
}

TEST(Series, IntegratePartialWindow) {
  sim::Series s("p");
  s.append(0.0, 4.0);
  s.append(10.0, 0.0);
  EXPECT_DOUBLE_EQ(s.integrate(5.0, 15.0), 20.0);
}

TEST(Series, RejectsBackwardsTime) {
  sim::Series s("p");
  s.append(5.0, 1.0);
  EXPECT_THROW(s.append(4.0, 1.0), std::invalid_argument);
}

TEST(Series, SameTimestampOverwrites) {
  sim::Series s("p");
  s.append(1.0, 1.0);
  s.append(1.0, 2.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.sample_at(1.0), 2.0);
}

TEST(Series, MinMax) {
  sim::Series s("p");
  s.append(0.0, 3.0);
  s.append(1.0, -2.0);
  s.append(2.0, 7.0);
  EXPECT_DOUBLE_EQ(s.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 7.0);
}

// ------------------------------------------------------------ TraceRecorder

TEST(TraceRecorder, CreatesSeriesOnDemand) {
  sim::TraceRecorder trace;
  trace.series("a").append(0.0, 1.0);
  trace.series("a").append(1.0, 2.0);
  EXPECT_EQ(trace.series("a").size(), 2u);
  EXPECT_NE(trace.find("a"), nullptr);
  EXPECT_EQ(trace.find("missing"), nullptr);
}

TEST(TraceRecorder, CsvExportHasHeaderAndGrid) {
  sim::TraceRecorder trace;
  trace.series("x").append(0.0, 1.0);
  trace.series("y").append(0.0, 2.0);
  std::ostringstream out;
  trace.write_csv(out, 0.0, 2.0, 1.0);
  const std::string s = out.str();
  EXPECT_NE(s.find("time_s,x,y"), std::string::npos);
  // 1 header + 3 rows (t = 0, 1, 2).
  int lines = 0;
  for (char c : s)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

// ------------------------------------------------- Event-pool internals

TEST(EnginePool, CancelTombstonesWithoutExecuting) {
  sim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&](sim::Engine&) { ++fired; });
  const auto gone = engine.schedule_at(2.0, [&](sim::Engine&) { ++fired; });
  EXPECT_EQ(engine.pending(), 2u);
  EXPECT_TRUE(engine.cancel(gone));
  EXPECT_EQ(engine.pending(), 1u);    // cancel leaves the live set at once
  EXPECT_FALSE(engine.cancel(gone));  // double-cancel fails
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.executed(), 1u);  // a tombstone never counts as executed
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(EnginePool, StaleIdCannotCancelRecycledSlot) {
  sim::Engine engine;
  int fired = 0;
  const auto first = engine.schedule_at(1.0, [&](sim::Engine&) { fired = 1; });
  ASSERT_TRUE(engine.cancel(first));
  const auto second =
      engine.schedule_at(1.0, [&](sim::Engine&) { fired = 2; });
  // The freed slot was recycled for `second` with a bumped generation, so
  // the stale handle must fail the validity check instead of cancelling
  // whatever lives in the slot now.
  EXPECT_EQ(engine.pool_stats().reuses, 1u);
  EXPECT_NE(first, second);
  EXPECT_FALSE(engine.cancel(first));
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(EnginePool, CancelHeavyRunCompactsTombstones) {
  sim::Engine engine;
  int fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(engine.schedule_at(1.0 + i,
                                     [&fired](sim::Engine&) { ++fired; }));
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (i % 10 != 0) engine.cancel(ids[i]);
  const auto stats = engine.pool_stats();
  EXPECT_GT(stats.compactions, 0u);  // sweeps ran during the cancel storm
  EXPECT_LT(stats.tombstones, 450u);  // dead entries do not accumulate
  EXPECT_EQ(engine.pending(), 100u);
  engine.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(engine.executed(), 100u);
}

TEST(EnginePool, PeriodicRearmsOneSlotInPlace) {
  sim::Engine engine;
  int fired = 0;
  sim::PeriodicTask task(engine, 0.5, 1.0,
                         [&](sim::Engine&, sim::PeriodicTask&) { ++fired; });
  engine.run_until(100.0);
  EXPECT_EQ(fired, 100);
  const auto stats = engine.pool_stats();
  EXPECT_EQ(stats.slots, 1u);  // one pool slot for the task's lifetime
  EXPECT_GE(stats.rearms, 99u);
  EXPECT_EQ(stats.spills, 0u);  // the [this] closure stays inline
}

TEST(EnginePool, OversizedCaptureSpillsAndStillRuns) {
  sim::Engine engine;
  std::array<double, 16> big{};  // 128 bytes: overflows the inline buffer
  big[0] = 7.0;
  double got = 0.0;
  engine.schedule_at(1.0, [big, &got](sim::Engine&) { got = big[0]; });
  EXPECT_EQ(engine.pool_stats().spills, 1u);
  engine.run();
  EXPECT_DOUBLE_EQ(got, 7.0);
}

TEST(EnginePool, RescheduleCurrentOutsideCallbackThrows) {
  sim::Engine engine;
  EXPECT_THROW(engine.reschedule_current(1.0), std::logic_error);
}

TEST(EnginePool, RescheduleCurrentKeepsIdStableAcrossFirings) {
  sim::Engine engine;
  int fires = 0;
  std::vector<sim::EventId> seen;
  sim::EventId id = 0;
  id = engine.schedule_at(1.0, [&](sim::Engine& e) {
    ++fires;
    // The executing event cannot be cancelled — its re-arm decision
    // belongs to the callback alone.
    EXPECT_FALSE(e.cancel(id));
    if (fires < 3) seen.push_back(e.reschedule_current(e.now() + 1.0));
  });
  engine.run_until(10.0);
  EXPECT_EQ(fires, 3);
  ASSERT_EQ(seen.size(), 2u);
  for (const auto s : seen) EXPECT_EQ(s, id);  // id stable across re-arms
  EXPECT_EQ(engine.pending(), 0u);
}

// ------------------------------------------------- Seed-order contract

namespace {

/// Faithful miniature of the pre-pool engine: a (time, seq)-ordered
/// priority_queue plus an id → std::function hash map (cancel = erase,
/// pop skips erased ids). The pool engine must reproduce this engine's
/// execution order exactly on any workload — the (time, seq) contract is
/// the engine's ABI.
class MiniSeedEngine {
 public:
  using Callback = std::function<void(MiniSeedEngine&)>;

  double now() const noexcept { return now_; }

  std::uint64_t schedule_at(double at, Callback fn) {
    const std::uint64_t id = next_id_++;
    queue_.push({at, seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  bool cancel(std::uint64_t id) { return callbacks_.erase(id) > 0; }

  void run_until(double until) {
    while (!queue_.empty()) {
      const Scheduled top = queue_.top();
      const auto it = callbacks_.find(top.id);
      if (it == callbacks_.end()) {  // cancelled: skip the tombstone
        queue_.pop();
        continue;
      }
      if (top.at > until) break;
      queue_.pop();
      Callback fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = top.at;
      fn(*this);
    }
    now_ = until;
  }

 private:
  struct Scheduled {
    double at;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const Scheduled& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };
  std::priority_queue<Scheduled, std::vector<Scheduled>,
                      std::greater<Scheduled>>
      queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t next_id_ = 1;
};

/// Randomized schedule/nest/cancel workload, identical for any engine
/// with the schedule_at/cancel/run_until surface. Every executed event
/// logs (time, tag); because the callbacks also drive the shared Rng,
/// any divergence in execution order derails the whole log, so exact
/// log equality is a strong order check.
template <class E>
struct WorkloadDriver {
  E engine;
  beesim::util::Rng rng{20260806};
  std::vector<std::pair<double, int>> log;
  std::vector<std::uint64_t> ids;
  int next_tag = 0;

  void fire(int tag, int depth) {
    log.emplace_back(engine.now(), tag);
    if (depth >= 3) return;
    const auto kids = rng.uniform_int(0, 2);
    for (std::int64_t k = 0; k < kids; ++k) {
      const double dt = rng.uniform(0.0, 5.0);
      const int t = next_tag++;
      const int d = depth + 1;
      ids.push_back(engine.schedule_at(engine.now() + dt,
                                       [this, t, d](E&) { fire(t, d); }));
    }
    if (!ids.empty() && rng.uniform() < 0.3) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1));
      engine.cancel(ids[pick]);
    }
  }

  std::vector<std::pair<double, int>> run() {
    for (int i = 0; i < 200; ++i) {
      const double at = rng.uniform(0.0, 50.0);
      const int t = next_tag++;
      ids.push_back(
          engine.schedule_at(at, [this, t](E&) { fire(t, 1); }));
    }
    engine.run_until(100.0);
    return log;
  }
};

}  // namespace

TEST(EngineDeterminism, MatchesSeedEngineOrder) {
  WorkloadDriver<sim::Engine> pool;
  WorkloadDriver<MiniSeedEngine> seed;
  const auto pool_log = pool.run();
  const auto seed_log = seed.run();
  ASSERT_GT(pool_log.size(), 200u);  // nesting actually happened
  EXPECT_EQ(pool_log, seed_log);
}

// ----------------------------------------------------------- Determinism

TEST(SimProperty, IdenticalRunsProduceIdenticalTraces) {
  auto run = [] {
    sim::Engine engine;
    sim::TraceRecorder trace;
    sim::PeriodicTask task(engine, 1.0, 2.5,
                           [&](sim::Engine& e, sim::PeriodicTask&) {
                             trace.series("t").append(e.now(), e.now() * 2);
                           });
    engine.run_until(50.0);
    return trace.series("t").values();
  };
  EXPECT_EQ(run(), run());
}
