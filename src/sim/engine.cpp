#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/catalog.hpp"

namespace beesim::sim {

// Instrument references are resolved once (function-local statics) so the
// hot path never touches the registry lock; every mutation is gated on
// obs::enabled() inside the instrument, keeping disabled runs unchanged.
namespace {

struct EngineMetrics {
  obs::Counter& scheduled =
      obs::registry().counter(obs::metric::kEngineEventsScheduled);
  obs::Counter& executed =
      obs::registry().counter(obs::metric::kEngineEventsExecuted);
  obs::Counter& cancelled =
      obs::registry().counter(obs::metric::kEngineEventsCancelled);
  obs::Gauge& max_queue_depth =
      obs::registry().gauge(obs::metric::kEngineMaxQueueDepth);

  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

}  // namespace

EventId Engine::schedule_at(SimTime at, Callback fn) {
  if (at < now_)
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("Engine::schedule_at: null callback");
  const EventId id = next_id_++;
  queue_.push({at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  auto& metrics = EngineMetrics::get();
  metrics.scheduled.inc();
  metrics.max_queue_depth.update_max(
      static_cast<double>(callbacks_.size()));
  return id;
}

EventId Engine::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0)
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const bool cancelled = callbacks_.erase(id) != 0;
  if (cancelled) EngineMetrics::get().cancelled.inc();
  return cancelled;
}

bool Engine::pop_next(Scheduled& out) {
  while (!queue_.empty()) {
    Scheduled top = queue_.top();
    queue_.pop();
    if (callbacks_.count(top.id) != 0) {
      out = top;
      return true;
    }
    // Tombstone from a cancel(); skip.
  }
  return false;
}

void Engine::run_until(SimTime until) {
  if (until < now_)
    throw std::invalid_argument("Engine::run_until: horizon in the past");
  Scheduled next{};
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!pop_next(next)) break;
    if (next.at > until) {
      // The popped event lies beyond the horizon; reinsert and stop.
      queue_.push(next);
      break;
    }
    auto it = callbacks_.find(next.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = next.at;
    ++executed_;
    EngineMetrics::get().executed.inc();
    fn(*this);
  }
  now_ = until;
}

void Engine::run() {
  Scheduled next{};
  while (pop_next(next)) {
    auto it = callbacks_.find(next.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = next.at;
    ++executed_;
    EngineMetrics::get().executed.inc();
    fn(*this);
  }
}

std::size_t Engine::pending() const noexcept { return callbacks_.size(); }

PeriodicTask::PeriodicTask(Engine& engine, SimTime start, SimTime period,
                           Callback fn)
    : engine_(&engine), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0.0)
    throw std::invalid_argument("PeriodicTask: non-positive period");
  arm(engine, start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (pending_ != 0) engine_->cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::set_period(SimTime period) {
  if (period <= 0.0)
    throw std::invalid_argument("PeriodicTask: non-positive period");
  period_ = period;
}

void PeriodicTask::arm(Engine& engine, SimTime at) {
  pending_ = engine.schedule_at(at, [this](Engine& eng) {
    pending_ = 0;
    fn_(eng, *this);
    if (!stopped_) arm(eng, eng.now() + period_);
  });
}

}  // namespace beesim::sim
