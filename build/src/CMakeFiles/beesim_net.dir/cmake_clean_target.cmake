file(REMOVE_RECURSE
  "libbeesim_net.a"
)
