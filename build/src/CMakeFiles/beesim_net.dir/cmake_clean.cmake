file(REMOVE_RECURSE
  "CMakeFiles/beesim_net.dir/net/link.cpp.o"
  "CMakeFiles/beesim_net.dir/net/link.cpp.o.d"
  "CMakeFiles/beesim_net.dir/net/payload.cpp.o"
  "CMakeFiles/beesim_net.dir/net/payload.cpp.o.d"
  "CMakeFiles/beesim_net.dir/net/retransmit.cpp.o"
  "CMakeFiles/beesim_net.dir/net/retransmit.cpp.o.d"
  "libbeesim_net.a"
  "libbeesim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
