#pragma once

#include <cstddef>
#include <vector>

#include "ml/tensor.hpp"

namespace beesim::ml {

/// Row-major single-precision GEMM with a broadcast row bias:
///   C[i, j] = bias[i] + sum_k A[i, k] * B[k, j]
/// A is (m x k), B is (k x n), C is (m x n, fully overwritten).
/// Register-blocked: 4-row panels accumulate into local tiles over the
/// full K extent, so each B row is streamed once per panel and the inner
/// loop vectorizes. This is the conv fast path's compute kernel.
void sgemm_bias(std::size_t m, std::size_t n, std::size_t k,
                const float* a, const float* b, const float* bias,
                float* c);

/// Lowers one (channels x height x width) image to the im2col matrix of a
/// stride-1 "same"-padded kernel-sized convolution: row (ic*kernel + ky)
/// *kernel + kx, column y*width + x holds input(ic, y+ky-pad, x+kx-pad)
/// or 0 outside the image. `out` is resized to
/// (channels*kernel*kernel) x (height*width).
void im2col_same(const float* image, std::size_t channels,
                 std::size_t height, std::size_t width, std::size_t kernel,
                 std::vector<float>& out);

}  // namespace beesim::ml
