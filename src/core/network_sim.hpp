#pragma once

#include <vector>

#include "core/allocator.hpp"
#include "core/client.hpp"
#include "core/loss.hpp"
#include "core/server.hpp"
#include "util/rng.hpp"

namespace beesim::core {

/// Everything that defines one large-scale deployment: the client type,
/// the server type, the allocator policy, and which losses apply.
struct FleetParams {
  ClientSpec client;
  ServerSpec server;
  FillPolicy policy = FillPolicy::kFillFirst;
  LossConfig loss;

  /// The paper's Section VI configuration: edge+cloud smart-beehive
  /// clients on a 5-minute cycle, cloud servers running the given queen
  /// detection model with `max_parallel` clients per time slot.
  static FleetParams paper_default(ServiceModel service = ServiceModel::kCnn,
                                   int max_parallel = 10,
                                   util::Seconds cycle = 300.0);
};

/// Outcome of one simulated wake-up cycle across the whole fleet.
struct CycleResult {
  int initial_clients = 0;
  int lost_clients = 0;
  int servers_used = 0;
  int active_slots = 0;
  util::Joules edge_energy = 0.0;   // summed over all clients
  util::Joules cloud_energy = 0.0;  // summed over all servers

  int surviving_clients() const noexcept {
    return initial_clients - lost_clients;
  }
  /// Per-client metrics are divided by the *initial* client count, as in
  /// the paper's figures (their x-axis is the deployed fleet size).
  double edge_per_client() const noexcept;
  double cloud_per_client() const noexcept;
  double total_per_client() const noexcept;
};

/// The analytic large-scale simulator of Section VI: allocates clients to
/// servers and time slots, applies the loss models, and accounts energy
/// for one cycle. Deterministic given the RNG (only loss C draws from
/// it).
class LargeScaleSimulator {
 public:
  explicit LargeScaleSimulator(FleetParams params);

  /// One cycle with `clients` deployed beehives.
  CycleResult simulate_cycle(int clients, util::Rng& rng) const;

  /// One cycle without any stochastic loss (ignores loss model C).
  CycleResult simulate_ideal_cycle(int clients) const;

  /// Sweeps a range of fleet sizes; each point runs `cycles_per_point`
  /// cycles and averages (loss C makes single cycles noisy).
  std::vector<CycleResult> sweep(const std::vector<int>& client_counts,
                                 std::uint64_t seed,
                                 int cycles_per_point = 1) const;

  /// The server spec with loss model B folded in (stretched slots).
  const ServerSpec& effective_server() const noexcept { return server_; }
  const FleetParams& params() const noexcept { return params_; }

 private:
  util::Joules server_energy(const Allocation::ServerLoad& load) const;

  FleetParams params_;
  ServerSpec server_;  // params_.server with transfer stretch applied
};

/// Convenience for sweeps: {lo, lo+step, ..., <= hi}.
std::vector<int> client_range(int lo, int hi, int step);

}  // namespace beesim::core
