#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::hive {

using util::Celsius;
using util::Seconds;

/// Ambient meteorological conditions at the apiary (the paper pairs its
/// hive traces with weather-station data). Temperature follows a daily
/// sinusoid around a seasonal mean with slow stochastic drift; relative
/// humidity is anti-correlated with temperature.
class WeatherModel {
 public:
  struct Params {
    Celsius mean_temp = 16.0;      // early-season Lyon/Cachan
    Celsius daily_swing = 7.0;     // half peak-to-peak
    Seconds warmest_time = 15.0 * util::kHour;  // time of day of peak
    double drift_volatility = 0.8;              // degC per sqrt(day)
    double base_humidity = 0.65;   // relative humidity at mean temp
    double humidity_per_degree = -0.02;
    std::uint64_t seed = 77;
  };

  WeatherModel();  // defaults
  explicit WeatherModel(const Params& params);

  /// Ambient temperature at absolute time t (t = 0 is midnight day 0).
  Celsius ambient_temp(Seconds t);

  /// Relative humidity in [0.05, 1.0].
  double humidity(Seconds t);

  const Params& params() const noexcept { return params_; }

 private:
  void advance_drift(Seconds t);

  Params params_;
  util::Rng rng_;
  Seconds drift_time_ = 0.0;
  double drift_ = 0.0;
};

}  // namespace beesim::hive
