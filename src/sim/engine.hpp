#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/units.hpp"

namespace beesim::sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = beesim::util::Seconds;

/// Handle used to cancel a scheduled event. Packs the event-pool slot
/// index (low 32 bits, biased by one so 0 is never a valid id) with the
/// slot's generation counter (high 32 bits). Recycling a slot bumps its
/// generation, so a stale handle fails the O(1) validity check instead of
/// cancelling whatever event happens to occupy the slot now.
using EventId = std::uint64_t;

/// Discrete-event simulation engine.
///
/// Events are callbacks ordered by (time, insertion sequence); the
/// sequence tie-break makes runs deterministic regardless of container
/// internals, which the property tests rely on (same seed => identical
/// traces). That (time, seq) contract is the engine's ABI: the pool
/// rewrite below reproduces the seed engine's execution order
/// byte-for-byte (guarded by EngineDeterminism.MatchesSeedEngineOrder).
///
/// Storage is a chunked slab of pool slots threaded on a free list. Each
/// slot embeds a small-buffer-optimized EventFn (heap only for oversized
/// captures) and a generation counter; the run queue is a 4-ary min-heap
/// of 24-byte (time, seq, slot, gen) entries (half the sift depth of a
/// binary heap, and each level's four children share a cache line pair).
/// Scheduling, cancelling and popping are all O(log n) heap traffic plus
/// O(1) slab access — no hashing, no per-event allocation once the slab
/// and heap have grown to the workload's high-water mark. A one-entry
/// "front slot" caches the global minimum: scheduling an event earlier
/// than everything pending bypasses the heap, and popping it is free, so
/// the wake-up-then-task-chain shape every hive generates (each step
/// scheduled a few milliseconds out, far before the next wake-up) does
/// almost no sift work at all. Slots live in fixed-size chunks whose
/// addresses never move, so callbacks execute in place — no relocation
/// out of the pool per event, even when the callback grows the slab. Cancellation just bumps the slot generation
/// (the heap entry becomes a tombstone, skipped when popped); when
/// tombstones start to dominate the heap a compaction pass sweeps them
/// out, so cancel-heavy runs cannot bloat the queue.
///
/// The engine is single-threaded by design: every experiment in the paper
/// is a closed-form or per-entity computation, and fleet-level parallelism
/// is applied *across* independent engines (see hive::run_hives_parallel
/// and the bench harnesses), never inside one engine, so no
/// synchronization is needed on the hot path.
class Engine {
 public:
  using Callback = EventFn;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  ///
  /// The template overload is what every lambda call site resolves to:
  /// the callable is emplaced directly into its pool slot — no EventFn
  /// temporary is built in the caller's frame and no buffer relocation
  /// happens at the call boundary. The Callback overload (engine.cpp)
  /// remains for pre-built EventFn values.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&, Engine&>>>
  EventId schedule_at(SimTime at, F&& fn) {
    if (at < now_)
      throw std::invalid_argument("Engine::schedule_at: time in the past");
    Slot* sp = nullptr;
    const std::uint32_t idx = acquire_slot(&sp);
    sp->fn.emplace(std::forward<F>(fn));
    return arm_slot(at, idx, *sp);
  }
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after a relative delay (must be >= 0).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&, Engine&>>>
  EventId schedule_after(SimTime delay, F&& fn) {
    if (delay < 0.0)
      throw std::invalid_argument(
          "Engine::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  EventId schedule_after(SimTime delay, Callback fn);

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled, or is the event currently executing. Cancellation is O(1)
  /// (generation bump tombstones the heap entry); cleanup is lazy with
  /// periodic compaction.
  bool cancel(EventId id);

  /// Re-arms the currently executing event's pool slot at absolute time
  /// `at` (must be >= now()), keeping its callback and EventId: no new
  /// closure is constructed and no pool traffic happens — the fast path
  /// PeriodicTask uses every cycle. Only valid from inside an event
  /// callback; throws std::logic_error otherwise. Returns the (unchanged)
  /// id of the re-armed event.
  EventId reschedule_current(SimTime at);

  /// Runs until the queue drains or `until` is reached, whichever is first.
  /// Advances now() to `until` even if the queue drains earlier, so energy
  /// integration over a fixed horizon is exact.
  void run_until(SimTime until);

  /// Runs until the queue is empty.
  void run();

  /// Pending (non-cancelled) event count.
  std::size_t pending() const noexcept { return live_; }

  /// Total number of events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Event-pool health counters, always maintained (independent of the
  /// obs toggle) so tests and benches can assert on reuse behaviour.
  struct PoolStats {
    std::size_t slots = 0;          ///< slab capacity (high-water mark)
    std::size_t free_slots = 0;     ///< slots currently on the free list
    std::size_t tombstones = 0;     ///< dead heap entries awaiting sweep
    std::uint64_t reuses = 0;       ///< schedules served from the free list
    std::uint64_t spills = 0;       ///< callbacks too big for inline storage
    std::uint64_t rearms = 0;       ///< in-place re-arms (periodic fast path)
    std::uint64_t compactions = 0;  ///< tombstone sweeps of the heap
  };
  PoolStats pool_stats() const noexcept;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Slots are allocated in fixed 256-slot chunks so their addresses stay
  /// stable for the engine's lifetime — the run loop invokes callbacks in
  /// place inside the pool, which is only safe because growing the slab
  /// never relocates existing slots.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Min-heap order on (at, seq). The heap shape (4-ary) never affects
  /// execution order — extraction order is the total order (at, seq) —
  /// so the determinism contract is independent of the queue layout.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) |
           static_cast<EventId>(slot + 1);
  }
  static std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  Slot& slot(std::uint32_t s) noexcept {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }
  const Slot& slot(std::uint32_t s) const noexcept {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }

  /// Pops a slot from the free list, growing the slab by one chunk when
  /// it is empty. Inline: in steady state this is a six-op free-list pop
  /// folded into the schedule fast path.
  std::uint32_t acquire_slot(Slot** out) {
    if (free_head_ != kNilSlot) {
      const std::uint32_t s = free_head_;
      Slot& sl = slot(s);
      free_head_ = sl.next_free;
      --free_count_;
      ++reuses_;
      *out = &sl;
      return s;
    }
    if ((slot_count_ & kChunkMask) == 0)
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    *out = &slot(slot_count_);
    return slot_count_++;
  }

  void release_slot(std::uint32_t slot) noexcept;
  bool entry_live(const HeapEntry& e) const noexcept;
  void heap_push(const HeapEntry& e);
  void heap_pop();
  void heap_sift_down(std::size_t i) noexcept;

  /// Queue insert with the front-slot fast path (see the class comment):
  /// defined inline so the schedule templates above compile the common
  /// park-in-front case down to a 24-byte store with no call.
  void queue_push(const HeapEntry& e) {
    if (front_valid_) {
      if (earlier(e, front_)) {
        heap_push(front_);
        front_ = e;
      } else {
        heap_push(e);
      }
    } else if (heap_.empty() || earlier(e, heap_[0])) {
      front_ = e;
      front_valid_ = true;
    } else {
      heap_push(e);
    }
  }

  /// Books a freshly filled slot into the queue; shared tail of both
  /// schedule_at overloads.
  EventId arm_slot(SimTime at, std::uint32_t idx, Slot& s) {
    if (!s.fn.inline_stored()) ++spills_;
    s.armed = true;
    queue_push({at, next_seq_++, idx, s.gen});
    ++live_;
    ++scheduled_total_;
    if (live_ > max_live_) max_live_ = live_;
    return make_id(idx, s.gen);
  }

  void queue_pop_top() noexcept;
  void compact_if_stale();
  void execute_event(Slot& s, const HeapEntry& e);
  void flush_metrics() noexcept;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  // Invariant: when front_valid_, front_ is (time, seq)-earlier than
  // every entry in heap_ — it is always the global minimum.
  HeapEntry front_{};
  bool front_valid_ = false;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t free_count_ = 0;
  std::size_t tombstones_ = 0;

  // Executing-event context consumed by reschedule_current().
  std::uint32_t exec_slot_ = kNilSlot;
  std::uint32_t exec_gen_ = 0;
  bool rearm_requested_ = false;
  SimTime rearm_at_ = 0.0;

  // Lifetime counters, plain members (no atomics) so the hot loop stays
  // free of instrumentation; deltas are flushed to the obs registry at
  // the end of each run()/run_until() call and on destruction.
  std::uint64_t scheduled_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t rearms_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t max_live_ = 0;
  std::uint64_t flushed_scheduled_ = 0;
  std::uint64_t flushed_executed_ = 0;
  std::uint64_t flushed_cancelled_ = 0;
  std::uint64_t flushed_reuses_ = 0;
  std::uint64_t flushed_spills_ = 0;
  std::uint64_t flushed_rearms_ = 0;
  std::uint64_t flushed_compactions_ = 0;
};

/// Repeats a callback every `period` seconds starting at `start`. The
/// callback may stop the repetition by calling stop().
///
/// The task owns one pool slot for its whole lifetime: each firing
/// re-arms the slot in place via Engine::reschedule_current, so the
/// steady state constructs no closures and touches no free list — the
/// event id stays stable across firings and stop() still cancels in O(1).
class PeriodicTask {
 public:
  using Callback = std::function<void(Engine&, PeriodicTask&)>;

  PeriodicTask(Engine& engine, SimTime start, SimTime period, Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool stopped() const noexcept { return stopped_; }
  SimTime period() const noexcept { return period_; }
  /// Adjusts the period for subsequent firings.
  void set_period(SimTime period);

 private:
  void arm(Engine& engine, SimTime at);

  Engine* engine_;
  SimTime period_;
  Callback fn_;
  EventId pending_ = 0;
  bool stopped_ = false;
};

}  // namespace beesim::sim
