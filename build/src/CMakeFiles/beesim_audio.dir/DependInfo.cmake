
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/dataset.cpp" "src/CMakeFiles/beesim_audio.dir/audio/dataset.cpp.o" "gcc" "src/CMakeFiles/beesim_audio.dir/audio/dataset.cpp.o.d"
  "/root/repo/src/audio/synth.cpp" "src/CMakeFiles/beesim_audio.dir/audio/synth.cpp.o" "gcc" "src/CMakeFiles/beesim_audio.dir/audio/synth.cpp.o.d"
  "/root/repo/src/audio/wav.cpp" "src/CMakeFiles/beesim_audio.dir/audio/wav.cpp.o" "gcc" "src/CMakeFiles/beesim_audio.dir/audio/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/beesim_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
