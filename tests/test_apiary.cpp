#include <gtest/gtest.h>

#include <sstream>

#include "hive/apiary.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace hive = beesim::hive;
namespace u = beesim::util;

namespace {

hive::Apiary::Config site_config(int hives, std::uint64_t seed) {
  hive::Apiary::Config cfg;
  cfg.hive_count = hives;
  cfg.site_seed = seed;
  cfg.hive.energy = hive::EnergyChainConfig::nominal(seed);
  return cfg;
}

}  // namespace

TEST(Apiary, BuildsRequestedHiveCount) {
  beesim::sim::Engine engine;
  hive::Apiary apiary(engine, site_config(4, 7), nullptr);
  EXPECT_EQ(apiary.size(), 4u);
  EXPECT_THROW(apiary.hive(4), std::out_of_range);
}

TEST(Apiary, RejectsEmptySite) {
  beesim::sim::Engine engine;
  EXPECT_THROW(hive::Apiary(engine, site_config(0, 7), nullptr),
               std::invalid_argument);
}

TEST(Apiary, HivesShareTheSkyButDifferInDetail) {
  beesim::sim::Engine engine;
  hive::Apiary apiary(engine, site_config(3, 11), nullptr);
  engine.run_until(1.0 * u::kDay);
  apiary.settle();
  // Same irradiance realization: harvested energy identical across hives
  // (same panel, same sky, load differences are tiny).
  const double h0 = apiary.hive(0).energy_node().total_harvested();
  const double h1 = apiary.hive(1).energy_node().total_harvested();
  EXPECT_NEAR(h0, h1, h0 * 0.02);
  // Different device jitter: consumed energy differs between hives.
  const double c0 = apiary.hive(0).stats().consumed;
  const double c1 = apiary.hive(1).stats().consumed;
  EXPECT_NE(c0, c1);
  EXPECT_NEAR(c0, c1, c0 * 0.05);  // but not by much
}

TEST(Apiary, SiteStatsAggregate) {
  beesim::sim::Engine engine;
  hive::Apiary apiary(engine, site_config(2, 21), nullptr);
  engine.run_until(0.5 * u::kDay);
  apiary.settle();
  const auto site = apiary.site_stats();
  const auto a = apiary.hive(0).stats();
  const auto b = apiary.hive(1).stats();
  EXPECT_EQ(site.wakeups_attempted,
            a.wakeups_attempted + b.wakeups_attempted);
  EXPECT_DOUBLE_EQ(site.consumed, a.consumed + b.consumed);
  EXPECT_GT(site.completion_rate(), 0.9);
  EXPECT_EQ(site.hives_with_outage, 0);
}

TEST(Apiary, DegradedSiteReportsOutages) {
  beesim::sim::Engine engine;
  hive::Apiary::Config cfg = site_config(2, 31);
  cfg.hive.energy = hive::EnergyChainConfig::degraded(31);
  hive::Apiary apiary(engine, cfg, nullptr);
  engine.run_until(2.0 * u::kDay);
  apiary.settle();
  const auto site = apiary.site_stats();
  EXPECT_EQ(site.hives_with_outage, 2);
  EXPECT_GT(site.total_outage, 2.0 * u::kHour);
  EXPECT_LT(site.completion_rate(), 0.95);
}

TEST(Apiary, PaperDeploymentHasTwoSitesFiveHives) {
  beesim::sim::Engine engine;
  hive::SmartBeehive::Config hive_template;
  hive_template.energy = hive::EnergyChainConfig::nominal(1);
  const auto sites = hive::paper_deployment(engine, hive_template);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0]->config().name, "Cachan");
  EXPECT_EQ(sites[0]->size(), 2u);
  EXPECT_EQ(sites[1]->config().name, "Lyon");
  EXPECT_EQ(sites[1]->size(), 3u);
  engine.run_until(6.0 * u::kHour);
  for (const auto& site : sites) site->settle();
  // Different sites see different weather realizations.
  beesim::sim::TraceRecorder unused;
  EXPECT_NE(sites[0]->hive(0).stats().consumed,
            sites[1]->hive(0).stats().consumed);
}

TEST(Apiary, DeterministicForSiteSeed) {
  auto run = [](std::uint64_t seed) {
    beesim::sim::Engine engine;
    hive::Apiary apiary(engine, site_config(2, seed), nullptr);
    engine.run_until(0.5 * u::kDay);
    apiary.settle();
    return apiary.site_stats().consumed;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// ------------------------------------------------- Parallel apiary

TEST(Apiary, ParallelMatchesSerialExactly) {
  const auto cfg = site_config(3, 31);
  const double horizon = 0.5 * u::kDay;

  // Serial reference: all hives on one shared engine.
  beesim::sim::Engine engine;
  beesim::sim::TraceRecorder serial_trace;
  hive::Apiary apiary(engine, cfg, &serial_trace);
  engine.run_until(horizon);
  apiary.settle();

  // Parallel: one engine per hive across worker threads. Co-located
  // hives share seeds, not state, so everything observable must be
  // bit-identical — EQ on doubles, not NEAR.
  beesim::sim::TraceRecorder par_trace;
  const auto runs = hive::Apiary::run_parallel(cfg, horizon, 3, &par_trace);

  ASSERT_EQ(runs.size(), apiary.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& s = apiary.hive(i).stats();
    const auto& p = runs[i].stats;
    EXPECT_EQ(p.wakeups_attempted, s.wakeups_attempted) << "hive " << i;
    EXPECT_EQ(p.wakeups_completed, s.wakeups_completed) << "hive " << i;
    EXPECT_EQ(p.wakeups_skipped, s.wakeups_skipped) << "hive " << i;
    EXPECT_EQ(p.consumed, s.consumed) << "hive " << i;
    EXPECT_EQ(p.harvested, s.harvested) << "hive " << i;
    EXPECT_EQ(p.outage_time, s.outage_time) << "hive " << i;
  }
  // Hive 0's trace must also be byte-identical (the serial constructor
  // records hive 0 only, matching run_parallel's trace0).
  EXPECT_EQ(par_trace.names(), serial_trace.names());
  std::ostringstream a, b;
  serial_trace.write_csv(a, 0.0, horizon, 60.0);
  par_trace.write_csv(b, 0.0, horizon, 60.0);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Apiary, ParallelIsThreadCountInvariant) {
  const auto cfg = site_config(4, 33);
  const double horizon = 0.25 * u::kDay;
  const auto t1 = hive::Apiary::run_parallel(cfg, horizon, 1);
  const auto t4 = hive::Apiary::run_parallel(cfg, horizon, 4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].events_executed, t4[i].events_executed) << "hive " << i;
    EXPECT_EQ(t1[i].stats.consumed, t4[i].stats.consumed) << "hive " << i;
    EXPECT_EQ(t1[i].stats.harvested, t4[i].stats.harvested) << "hive " << i;
    EXPECT_EQ(t1[i].stats.wakeups_completed, t4[i].stats.wakeups_completed)
        << "hive " << i;
  }
}
