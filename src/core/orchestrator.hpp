#pragma once

#include <vector>

#include "core/allocator.hpp"
#include "core/scenario.hpp"
#include "hive/services.hpp"

namespace beesim::core {

/// Placement decision for one service of the catalog.
struct ServicePlan {
  hive::ServiceSpec service;
  Placement placement = Placement::kEdgeOnly;
};

/// Per-client, per-cycle cost of a full placement assignment.
struct OrchestrationCosts {
  util::Joules edge_per_cycle = 0.0;  // one client's edge energy
  util::Joules cloud_per_client = 0.0;  // server share per client
  util::Seconds edge_active_time = 0.0;  // worst cycle
  int servers_used = 0;
  bool feasible = true;

  util::Joules total_per_client() const noexcept {
    return edge_per_cycle + cloud_per_client;
  }
};

/// Shared knobs of the multi-service placement evaluation. Validated by
/// ServiceOrchestrator's constructor: clients and max_parallel >= 1,
/// cycle / uplink / weight finite and positive (std::invalid_argument
/// otherwise — NaN is rejected, not silently accepted).
struct OrchestratorOptions {
  int clients = 100;
  int max_parallel = 10;
  util::Seconds cycle = 300.0;
  FillPolicy policy = FillPolicy::kFillFirst;
  /// Effective per-client uplink inside a synchronized slot, calibrated
  /// from Table II: one 441 kB audio clip takes the 15 s receive window,
  /// i.e. 29.4 kB/s (overheads folded in).
  double slot_uplink_bytes_per_s = 441000.0 / 15.0;
  /// Objective weight on edge joules relative to cloud joules. The paper
  /// argues "one joule of energy used at the edge is not equivalent to
  /// one joule ... on the cloud" — solar joules are scarcer. 1.0 ranks by
  /// raw total energy; >1 biases services off the hive.
  double edge_joule_weight = 1.0;
};

/// The multi-service placement optimizer — the "services orchestration"
/// of the paper's title, generalized beyond the single queen-detection
/// service it measures. Evaluates full placement assignments of a service
/// catalog (each service at the edge or in the cloud) against the
/// calibrated cycle model and picks the best by weighted energy.
///
/// Accounting follows the paper's scenarios:
///  - the edge always wakes, collects, and shuts down (Table I/II base);
///  - each edge-placed service adds its execution energy (amortized over
///    its period) and a single results upload per cycle covers them all;
///  - cloud-placed services add upload time proportional to their data
///    (amortized) and occupy the server's slot window (receive+process);
///  - server capacity is planned on the worst cycle (all periodic
///    services firing), energy billed on the average cycle.
class ServiceOrchestrator {
 public:
  explicit ServiceOrchestrator(const OrchestratorOptions& options);

  /// Costs of one specific assignment (plans must cover distinct
  /// services). `feasible` is false when the edge routine or the slot
  /// schedule does not fit the cycle.
  OrchestrationCosts evaluate(const std::vector<ServicePlan>& plans) const;

  struct Result {
    std::vector<ServicePlan> plans;
    OrchestrationCosts costs;
    /// Weighted objective (edge_joule_weight * edge + cloud).
    double objective = 0.0;
  };

  /// Exhaustive search over all 2^k placements of the catalog (k is
  /// small); returns the feasible assignment with the lowest weighted
  /// energy. Throws if nothing is feasible.
  Result optimize(const std::vector<hive::ServiceSpec>& services) const;

  /// Smallest fleet size in [lo, hi] at which this single service is
  /// cheaper in the cloud than at the edge (total energy, weight 1), if
  /// any — the per-service generalization of the Fig 7 crossover.
  std::optional<int> cloud_breakeven(const hive::ServiceSpec& service,
                                     int lo, int hi) const;

  /// Outcome of degrading an assignment for a cloud outage window.
  struct DegradedResult {
    std::vector<ServicePlan> plans;  // every service now kEdgeOnly
    OrchestrationCosts costs;        // of the degraded assignment
    /// Cloud services the edge could not absorb, dropped for the window
    /// (largest edge execution time shed first).
    std::vector<hive::ServiceSpec> shed;
    int services_moved = 0;  // kEdgeCloud -> kEdgeOnly moves kept
  };

  /// Degradation policy for fault::FaultKind::kCloudOutage windows: move
  /// every cloud-placed service of `plans` to the edge, then — if the
  /// edge routine no longer fits the cycle — shed moved services
  /// greedily (largest edge time first) until it does. Services already
  /// at the edge are never shed. Throws if even the original edge set is
  /// infeasible. Counts `core.orchestrator.degraded_plans` and
  /// `core.orchestrator.services_shed`.
  DegradedResult degrade_to_edge(const std::vector<ServicePlan>& plans) const;

  const OrchestratorOptions& options() const noexcept { return options_; }

 private:
  OrchestratorOptions options_;
};

}  // namespace beesim::core
