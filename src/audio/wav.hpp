#pragma once

#include <string>
#include <vector>

namespace beesim::audio {

/// Minimal 16-bit mono PCM WAV I/O, enough for the examples to export a
/// synthesized clip and read it back. Samples are doubles in [-1, 1];
/// values outside are clipped on write.
void write_wav(const std::string& path, const std::vector<double>& samples,
               double sample_rate);

struct WavData {
  std::vector<double> samples;
  double sample_rate = 0.0;
};

WavData read_wav(const std::string& path);

}  // namespace beesim::audio
