file(REMOVE_RECURSE
  "CMakeFiles/fig2_weekly_trace.dir/fig2_weekly_trace.cpp.o"
  "CMakeFiles/fig2_weekly_trace.dir/fig2_weekly_trace.cpp.o.d"
  "fig2_weekly_trace"
  "fig2_weekly_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_weekly_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
