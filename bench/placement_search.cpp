// The optimizing placement orchestrator on the Fig 7 crossover regime
// (docs/PLACEMENT.md): a heterogeneous three-class apiary around the
// paper's 630-client maximum-advantage fleet at 35 clients per slot.
//
// Part 1 searches the energy-vs-loss Pareto frontier over the class mix
// and checks the beam matches or beats the per-service greedy baseline at
// the greedy's own loss level, plus the determinism contract (the
// frontier must be byte-identical across thread counts and repeated
// runs). Part 2 replays a random cloud-outage FaultPlan through
// ResilientFleet twice — optimizer=greedy vs optimizer=beam — and
// requires the beam's total energy to match or beat greedy's. Any
// violated check exits non-zero, so the optimizer claims are
// tier-1-guarded via the bench_smoke_placement ctest.
//
// Usage: placement_search [fleet=630] [cycles=40] [servers=1]
//                         [tolerance=0.35] [beam=32] [service=cnn|svm]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/placement_search.hpp"
#include "core/resilience.hpp"
#include "fault/fault.hpp"
#include "hive/services.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace beesim;
using core::Assignment;
using core::DeviceClassSpec;
using core::FleetAssignment;
using core::FleetSearchOptions;
using core::ParetoFrontier;
using core::PlacementSearch;

namespace {

// The heterogeneous apiary: the paper's single RPi 3B+ class split into
// three device generations at different battery/link states.
std::vector<DeviceClassSpec> apiary(int fleet) {
  DeviceClassSpec rooftop;
  rooftop.name = "rooftop";
  rooftop.count = fleet / 2;
  rooftop.battery_soc = 0.9;
  DeviceClassSpec meadow;
  meadow.name = "meadow";
  meadow.count = fleet / 3;
  meadow.compute_scale = 1.2;
  meadow.battery_soc = 0.5;
  meadow.link_quality = 0.8;
  DeviceClassSpec remote;
  remote.name = "remote";
  remote.count = fleet - rooftop.count - meadow.count;
  remote.energy_scale = 1.3;
  remote.battery_soc = 0.2;
  remote.link_quality = 0.5;
  return {rooftop, meadow, remote};
}

// Bit-pattern serialization of a frontier (%a prints the exact double),
// so a string compare is a byte-identity compare.
std::string serialize(const ParetoFrontier& frontier) {
  std::string out;
  char buf[128];
  for (const auto& p : frontier.points) {
    std::snprintf(buf, sizeof(buf), "%s %a %a %d\n",
                  p.hash.to_string().c_str(), p.energy_per_cycle,
                  p.loss_bytes_per_cycle, p.servers_used);
    out += buf;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int fleet = static_cast<int>(args.config().get_int("fleet", 630));
  const int cycles = static_cast<int>(args.config().get_int("cycles", 40));
  const int servers = static_cast<int>(args.config().get_int("servers", 1));
  const double tolerance = args.config().get_double("tolerance", 0.35);
  const int beam_width = static_cast<int>(args.config().get_int("beam", 32));
  const core::ServiceModel service =
      args.config().get_string("service", "cnn") == "svm"
          ? core::ServiceModel::kSvm
          : core::ServiceModel::kCnn;

  bench::banner("Placement", "beam/DP search vs greedy on the Fig 7 "
                             "crossover fleet");
  int fail = 0;

  // ---- Part 1: the Pareto frontier over the heterogeneous class mix.
  const std::vector<DeviceClassSpec> classes = apiary(fleet);
  const std::vector<hive::ServiceSpec> services = {
      service == core::ServiceModel::kCnn
          ? hive::services::queen_detection_cnn()
          : hive::services::queen_detection_svm(),
      hive::services::pollen_detection()};
  core::OrchestratorOptions base;
  base.max_parallel = 35;  // the Fig 7b panel
  FleetSearchOptions opts;
  opts.beam_width = beam_width;
  opts.max_cloud_servers = servers;
  const PlacementSearch search(classes, services, base, opts);

  core::SearchStats stats;
  const ParetoFrontier frontier = search.search(0, &stats);
  const FleetAssignment greedy = search.greedy();

  std::printf("\n--- Pareto frontier: %d hives in %zu classes, %zu "
              "services, %d cloud server(s) ---\n\n",
              fleet, classes.size(), services.size(), servers);
  util::AsciiTable table(
      {"J/cycle", "Loss %", "Servers", "Assignment (class: svc->where)"});
  for (const auto& p : frontier.points) {
    std::string assign;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (c > 0) assign += "  ";
      assign += classes[c].name + ":";
      for (std::size_t s = 0; s < services.size(); ++s) {
        assign += ' ';
        assign += core::to_string(p.at(static_cast<int>(c),
                                       static_cast<int>(s),
                                       static_cast<int>(services.size())));
      }
    }
    table.add_row({util::AsciiTable::num(p.energy_per_cycle, 1),
                   util::AsciiTable::num(100.0 * p.loss_fraction, 1),
                   std::to_string(p.servers_used), assign});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nsearch stats: %lld expanded, %lld pruned, %lld exact "
              "evaluations, frontier %d, %.3f ms\n",
              static_cast<long long>(stats.candidates_expanded),
              static_cast<long long>(stats.candidates_pruned),
              static_cast<long long>(stats.evaluations),
              stats.frontier_size, 1e3 * stats.elapsed_seconds);

  const FleetAssignment* match = frontier.min_energy(greedy.loss_fraction);
  std::printf("\ngreedy baseline: %.1f J/cycle at %.1f%% loss "
              "(%d server(s))\n",
              greedy.energy_per_cycle, 100.0 * greedy.loss_fraction,
              greedy.servers_used);
  if (greedy.feasible && match != nullptr &&
      match->energy_per_cycle <= greedy.energy_per_cycle + 1e-9) {
    std::printf("beam at the same loss level: %.1f J/cycle "
                "(%.2f%% below greedy)\n",
                match->energy_per_cycle,
                100.0 * (greedy.energy_per_cycle - match->energy_per_cycle) /
                    greedy.energy_per_cycle);
    std::printf("placement beam-vs-greedy ok\n");
  } else {
    std::printf("placement beam-vs-greedy FAILED: no frontier point "
                "matches the greedy completion\n");
    fail = 1;
  }

  // Determinism contract: byte-identical frontier across thread counts
  // and repeated runs.
  const std::string t1 = serialize(search.search(1));
  if (t1 == serialize(search.search(4)) && t1 == serialize(frontier) &&
      t1 == serialize(search.search(1))) {
    std::printf("placement determinism ok (threads=1/4, repeated runs)\n");
  } else {
    std::printf("placement determinism FAILED: frontier depends on "
                "thread count or run order\n");
    fail = 1;
  }

  // ---- Part 2: ResilientFleet under a non-empty cloud-outage FaultPlan.
  const fault::FaultPlan plan = fault::FaultPlan::random_outages(
      42, cycles, 0.3, 4, fault::FaultKind::kCloudOutage);
  const core::FleetParams params =
      core::FleetParams::paper_default(service, 35);
  core::ResiliencePolicy greedy_policy;  // optimizer=greedy (the default)
  core::ResiliencePolicy beam_policy;
  beam_policy.optimizer = core::PlacementOptimizer::kBeam;
  beam_policy.classes = classes;
  beam_policy.outage_loss_tolerance = tolerance;
  beam_policy.search.beam_width = beam_width;
  const core::ResilientFleet greedy_fleet(params, plan, greedy_policy,
                                          service);
  const core::ResilientFleet beam_fleet(params, plan, beam_policy, service);

  util::Rng rng_greedy(7);
  util::Rng rng_beam(7);
  const core::ResiliencePoint pg =
      greedy_fleet.run_point(fleet, cycles, rng_greedy);
  const core::ResiliencePoint pb =
      beam_fleet.run_point(fleet, cycles, rng_beam);

  std::printf("\n--- Fault plan: %zu cloud-outage windows over %d cycles, "
              "%d clients ---\n\n",
              plan.windows().size(), cycles, fleet);
  std::printf("  optimizer=greedy: %10.1f J/cycle total, "
              "delivery %5.1f%%, shed %lld client-cycles\n",
              pg.total_energy.mean(), 100.0 * pg.delivery_fraction(),
              static_cast<long long>(pg.shed_client_cycles));
  std::printf("  optimizer=beam:   %10.1f J/cycle total, "
              "delivery %5.1f%%, shed %lld client-cycles "
              "(shed fraction %.2f)\n",
              pb.total_energy.mean(), 100.0 * pb.delivery_fraction(),
              static_cast<long long>(pb.shed_client_cycles),
              beam_fleet.outage_shed_fraction());
  const double saving_pct =
      pg.total_energy.mean() > 0.0
          ? 100.0 * (pg.total_energy.mean() - pb.total_energy.mean()) /
                pg.total_energy.mean()
          : 0.0;
  // The parseable headline check.sh --bench lifts into BENCH_des.json.
  std::printf("\nplacement headline: greedy_j_per_cycle=%.1f "
              "beam_j_per_cycle=%.1f saving_pct=%.2f\n",
              pg.total_energy.mean(), pb.total_energy.mean(), saving_pct);
  if (pb.total_energy.mean() <= pg.total_energy.mean() + 1e-6) {
    std::printf("placement outage beam<=greedy ok\n");
  } else {
    std::printf("placement outage beam<=greedy FAILED\n");
    fail = 1;
  }

  return fail;
}
