#include "hive/beehive.hpp"

#include <cmath>

#include "device/calibration.hpp"
#include "device/profiles.hpp"

namespace beesim::hive {

EnergyChainConfig EnergyChainConfig::nominal(std::uint64_t seed) {
  EnergyChainConfig c;
  c.irradiance.seed = seed;
  return c;  // defaults already model the deployed 30 W / 20 Ah chain
}

EnergyChainConfig EnergyChainConfig::degraded(std::uint64_t seed) {
  EnergyChainConfig c = nominal(seed);
  // Field behaviour (Fig 2a): the bank never charges much above a sliver
  // of capacity and protection trips early, so the hive dies after dusk.
  c.battery.capacity = util::mah_to_joules(1200.0, 5.0);
  c.battery.initial_soc = 0.5;
  c.battery.cutoff_soc = 0.30;
  c.battery.charge_efficiency = 0.80;
  return c;
}

EnergyChainConfig EnergyChainConfig::undersized(std::uint64_t seed) {
  EnergyChainConfig c = nominal(seed);
  c.battery.capacity = util::mah_to_joules(2400.0, 5.0);
  c.battery.initial_soc = 0.6;
  c.battery.cutoff_soc = 0.05;
  return c;
}

SmartBeehive::Config SmartBeehive::Config::field_deployment(
    std::uint64_t seed) {
  Config c;
  c.seed = seed;
  c.energy = EnergyChainConfig::degraded(seed);
  c.colony_introduction = std::nullopt;
  return c;
}

SmartBeehive::SmartBeehive(sim::Engine& engine, const Config& config,
                           sim::TraceRecorder* trace)
    : engine_(&engine), config_(config), trace_(trace),
      weather_(config.weather),  // seed set by the caller (apiaries share it)
      sht31_(config.seed ^ 0x31), gas_(config.seed ^ 0x9a5),
      current_sensor_([&] {
        energy::CurrentSensor::Params sp;
        sp.seed = config.seed ^ 0xadc;
        return energy::CurrentSensor(sp);
      }()),
      fault_rng_(config.seed ^ 0xfa) {
  if (config_.colony_introduction.has_value()) colony_.set_present(false);
  if (config_.adaptive.has_value()) {
    AdaptiveWakeupPolicy policy = *config_.adaptive;
    policy.base_period = config_.wakeup_period;
    adaptive_.emplace(policy);
  }

  node_ = std::make_unique<energy::HarvestNode>(
      energy::SolarPanel(config_.energy.panel),
      energy::DcDcConverter(config_.energy.converter),
      energy::Battery(config_.energy.battery),
      energy::IrradianceModel(config_.energy.irradiance));

  pi_ = std::make_unique<device::SimDevice>(
      engine, device::rpi3bplus_profile(), config_.seed ^ 0x3b);
  zero_ = std::make_unique<device::SimDevice>(
      engine, device::rpi_zero_profile(), config_.seed ^ 0x00);
  pi_->enter_sleep();
  zero_->enter_idle();
  if (trace_ != nullptr)
    pi_->meter().attach_series(&trace_->series("pi_power_w"));

  monitor_task_ = std::make_unique<sim::PeriodicTask>(
      engine, engine.now() + config_.monitor_step, config_.monitor_step,
      [this](sim::Engine& eng, sim::PeriodicTask&) { monitor_tick(eng); });
  wakeup_task_ = std::make_unique<sim::PeriodicTask>(
      engine, engine.now() + config_.wakeup_period, config_.wakeup_period,
      [this](sim::Engine& eng, sim::PeriodicTask&) { wakeup_tick(eng); });
}

void SmartBeehive::monitor_tick(sim::Engine& engine) {
  const sim::SimTime t = engine.now();

  // Colony introduction event.
  if (config_.colony_introduction.has_value() &&
      t >= *config_.colony_introduction && !colony_.present())
    colony_.set_present(true);

  // Integrate both meters up to now; the energy the devices actually
  // consumed over [t - step, t] is drawn from the harvest chain as a
  // constant-power load (exact conservation, property-tested). The meters
  // also integrate on every task transition between ticks, so the delta
  // must be taken against the running accounted total, not the pre-advance
  // snapshot.
  pi_->meter().advance_to(t);
  zero_->meter().advance_to(t);
  const util::Joules consumed_now =
      pi_->meter().total() + zero_->meter().total();
  const util::Joules interval_energy = consumed_now - accounted_consumed_;
  accounted_consumed_ = consumed_now;
  const util::Watts load = interval_energy / config_.monitor_step;
  const auto step = node_->step(t - config_.monitor_step,
                                config_.monitor_step, load);

  if (step.brownout) {
    stats_.outage_time += config_.monitor_step;
    if (online_ && !pi_->busy()) {
      pi_->power_off();
      online_ = false;
    }
  } else if (!online_ &&
             node_->battery().state_of_charge() >
                 config_.energy.battery.cutoff_soc + 0.05) {
    // Morning sun restored the battery margin: bring the recorder back.
    online_ = true;
    if (!pi_->busy()) pi_->enter_sleep();
  }

  if (adaptive_.has_value()) {
    const util::Seconds period =
        adaptive_->update(node_->battery().state_of_charge());
    if (period != wakeup_task_->period()) wakeup_task_->set_period(period);
  }

  record_environment(t);
}

sim::SimTime SmartBeehive::wakeup_period() const {
  return wakeup_task_->period();
}

void SmartBeehive::wakeup_tick(sim::Engine& engine) {
  ++stats_.wakeups_attempted;
  const fault::CycleFaults* faults = nullptr;
  if (config_.faults != nullptr) {
    const int cycle =
        fault::FaultInjector::cycle_at(engine.now(), wakeup_period());
    if (cycle >= 0) faults = &config_.faults->at(cycle);
    // Derate (or restore) the battery protection window for this slot —
    // a derated bank refuses wake-ups it would normally serve, so the
    // can_serve gate below becomes the load-shedding policy.
    node_->battery().set_derating(
        faults != nullptr ? faults->battery_factor : 1.0);
  }
  const util::Watts routine_power = device::cal::kRoutinePower +
                                    device::cal::kZeroMonitorPower;
  if (!online_ || pi_->busy() ||
      !node_->can_serve(engine.now(), routine_power)) {
    ++stats_.wakeups_skipped;
    return;
  }
  device::Placement placement = config_.placement;
  if (faults != nullptr && (faults->link_outage || faults->cloud_outage) &&
      placement == device::Placement::kEdgeCloud) {
    // Cloud unreachable: fall back to local inference for this wake-up.
    placement = device::Placement::kEdgeOnly;
    ++stats_.wakeups_degraded;
  }
  if (faults != nullptr && faults->sensor_dropout_fraction > 0.0 &&
      fault_rng_.chance(faults->sensor_dropout_fraction))
    ++stats_.wakeups_muted;  // routine still runs; the clip is silence
  device::TaskSequence tasks =
      device::edge_routine(placement, config_.service);
  pi_->run_spec_sequence(std::move(tasks), [this](sim::Engine&) {
    ++stats_.wakeups_completed;
  });
}

void SmartBeehive::record_environment(sim::SimTime t) {
  if (trace_ == nullptr) return;
  auto snap = collect_snapshot(t, weather_, colony_, sht31_, gas_);
  trace_->series("hive_temp_c").append(t, snap.in_hive.temperature);
  trace_->series("hive_humidity").append(t, snap.in_hive.humidity);
  trace_->series("ambient_temp_c").append(t, snap.ambient_temp);
  trace_->series("ambient_humidity").append(t, snap.ambient_humidity);
  trace_->series("irradiance_frac").append(t, node_->irradiance().at(t));
  trace_->series("battery_soc")
      .append(t, node_->battery().state_of_charge());
  trace_->series("online").append(t, online_ ? 1.0 : 0.0);
  // What the Zero's Grove current sensor would report for the Pi's draw
  // at this instant (quantized + noisy) — the "measured" Fig 2b series.
  trace_->series("pi_power_measured_w")
      .append(t, current_sensor_.measure_power(
                     pi_->meter().current_power()));
}

void SmartBeehive::settle() {
  pi_->meter().advance_to(engine_->now());
  zero_->meter().advance_to(engine_->now());
}

SmartBeehive::Stats SmartBeehive::stats() const {
  Stats s = stats_;
  s.harvested = node_->total_harvested();
  s.consumed = pi_->meter().total() + zero_->meter().total();
  if (adaptive_.has_value()) s.regime_transitions = adaptive_->transitions();
  return s;
}

}  // namespace beesim::hive
