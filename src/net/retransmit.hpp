#pragma once

#include "net/link.hpp"

namespace beesim::net {

/// Chunked transfer with per-chunk loss and retransmission — the
/// micro-foundation of the paper's loss model B ("extra transfer seconds
/// per client"): when many synchronized clients share the channel, the
/// per-chunk loss probability rises and the expected retransmissions
/// stretch every transfer.
class RetransmittingLink {
 public:
  struct Params {
    Bytes chunk_size = 16384.0;  // TCP-ish segment burst
    /// Per-chunk loss probability when a single client transmits.
    double base_loss = 0.01;
    /// Additional loss per concurrent client sharing the slot (collision
    /// pressure, AP queue overflow). At the deployed ~0.8 Mbps uplink
    /// this founds a per-client stretch of the order the paper's loss
    /// model B assumes (1.5 s/client for the full routine upload).
    double loss_per_concurrent = 0.02;
    /// Give up on a transfer after this many attempts for one chunk.
    int max_attempts_per_chunk = 12;
  };

  RetransmittingLink(Link link, const Params& params);

  struct TransferResult {
    Seconds duration = 0.0;
    int chunks = 0;
    int retransmissions = 0;
    bool completed = true;  // false when a chunk exhausted its attempts
  };

  /// Transfers `bytes` while `concurrent_clients` share the channel.
  TransferResult transfer(Bytes bytes, int concurrent_clients,
                          util::Rng& rng) const;

  /// Expected stretch in seconds per additional concurrent client for a
  /// transfer of `bytes` — the quantity the paper fixes at 1.5 s/client.
  /// Derived analytically from the loss model (geometric retries).
  Seconds expected_stretch_per_client(Bytes bytes) const;

  const Params& params() const noexcept { return params_; }
  const Link& link() const noexcept { return link_; }

 private:
  double chunk_loss(int concurrent_clients) const;
  static void record_transfer(const TransferResult& result, Bytes bytes);

  Link link_;
  Params params_;
};

}  // namespace beesim::net
