#pragma once

#include "core/scenario.hpp"
#include "device/task.hpp"
#include "util/units.hpp"

namespace beesim::core {

/// The "client" of the paper's simulation model (Section VI.A): one smart
/// beehive, described by its sleep power, an ordered series of active
/// actions with time/power, and the interval between wake-ups. Any IoT
/// device linked to a server fits this shape.
struct ClientSpec {
  util::Watts sleep_power = 0.0;
  device::TaskSequence actions;
  util::Seconds period = 300.0;

  util::Seconds active_time() const noexcept;
  util::Joules active_energy() const noexcept;
  /// Energy of one full cycle: active actions + sleep for the remainder.
  util::Joules cycle_energy() const;
  /// Energy of a cycle in which the client never woke (loss model C).
  util::Joules sleep_cycle_energy() const noexcept {
    return sleep_power * period;
  }

  /// The smart-beehive client for a given placement/service, built from
  /// the calibrated scenario tables. For kEdgeCloud this is the 322 J /
  /// cycle client of Table II.
  static ClientSpec smart_beehive(Placement placement, ServiceModel service,
                                  util::Seconds period = 300.0);
};

}  // namespace beesim::core
