// The full queen-detection service, end to end, exactly as it would run
// on (or off) the beehive:
//
//   synthetic in-hive audio -> mel spectrogram (sr 22050, n_fft 2048,
//   hop 512, 128 bands) -> SVM (RBF) and CNN classifiers -> verdicts,
//   with the energy price of each option on the Raspberry Pi and on the
//   cloud server.
//
// Also writes one queenright and one queenless recording to WAV so you
// can listen to the synthesized colonies.
//
//   $ ./queen_detection_pipeline [clips=160] [out_dir=.]

#include <cstdio>
#include <string>

#include "audio/dataset.hpp"
#include "audio/wav.hpp"
#include "ml/costmodel.hpp"
#include "ml/metrics.hpp"
#include "ml/network.hpp"
#include "ml/svm.hpp"
#include "util/config.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  util::Config config(argc, argv);
  audio::DatasetParams params;
  params.count = static_cast<int>(config.get_int("clips", 160));
  params.clip_seconds = 1.5;
  const std::string out_dir = config.get_string("out_dir", ".");

  std::printf("queen detection pipeline\n========================\n\n");

  // Export one audible recording per class.
  {
    audio::BeeAudioSynth synth;
    util::Rng rng(7);
    audio::write_wav(out_dir + "/queenright.wav",
                     synth.synthesize(true, 3.0, rng), 22050.0);
    audio::write_wav(out_dir + "/queenless.wav",
                     synth.synthesize(false, 3.0, rng), 22050.0);
    std::printf("Wrote %s/queenright.wav and %s/queenless.wav (3 s each)\n\n",
                out_dir.c_str(), out_dir.c_str());
  }

  std::printf("Generating %d labeled clips and extracting mel features "
              "(sr 22050, n_fft 2048, hop 512, 128 bands)...\n",
              params.count);
  const auto ds = audio::generate_queen_dataset(params);
  const auto split = audio::split_dataset(ds, 0.3);
  std::printf("  %zu train / %zu test examples\n\n", split.train.size(),
              split.test.size());

  // ---- Classical option: RBF SVM on per-band features -----------------
  std::vector<std::vector<double>> train_x;
  std::vector<bool> train_y;
  for (auto i : split.train) {
    train_x.push_back(ds.examples[i].features);
    train_y.push_back(ds.examples[i].queen_present);
  }
  ml::StandardScaler scaler;
  scaler.fit(train_x);
  ml::SvmClassifier::Params svm_params;
  svm_params.c = 20.0;
  svm_params.gamma = 0.01;
  ml::SvmClassifier svm(svm_params);
  svm.fit(scaler.transform(train_x), train_y);

  std::vector<bool> svm_pred;
  std::vector<bool> truth;
  for (auto i : split.test) {
    svm_pred.push_back(
        svm.predict(scaler.transform(ds.examples[i].features)));
    truth.push_back(ds.examples[i].queen_present);
  }
  const auto svm_cm = ml::confusion(svm_pred, truth);
  std::printf("SVM (RBF, C=20): accuracy %.3f  precision %.3f  recall "
              "%.3f  f1 %.3f  (%zu support vectors)\n",
              svm_cm.accuracy(), svm_cm.precision(), svm_cm.recall(),
              svm_cm.f1(), svm.support_vector_count());

  // ---- Deep option: CNN on 100x100 mel images --------------------------
  const std::size_t side = 100;
  std::vector<dsp::Matrix> train_images;
  std::vector<std::size_t> train_labels;
  for (auto i : split.train) {
    train_images.push_back(ds.image(i, side));
    train_labels.push_back(ds.examples[i].queen_present ? 1u : 0u);
  }
  util::Rng rng(99);
  auto cnn = ml::make_queen_cnn(rng, 8, side);
  ml::TrainOptions opt;
  opt.epochs = 8;
  opt.learning_rate = 0.06f;
  const auto report = ml::train_classifier(cnn, train_images, train_labels,
                                           opt);

  std::vector<dsp::Matrix> test_images;
  std::vector<std::size_t> test_labels;
  for (auto i : split.test) {
    test_images.push_back(ds.image(i, side));
    test_labels.push_back(ds.examples[i].queen_present ? 1u : 0u);
  }
  const double cnn_acc =
      ml::evaluate_classifier(cnn, test_images, test_labels);
  std::printf("CNN (100x100 input, %zu parameters): accuracy %.3f "
              "(train loss %.3f -> %.3f)\n\n",
              cnn.parameter_count(), cnn_acc, report.epoch_loss.front(),
              report.epoch_loss.back());

  // ---- What does each verdict cost? ------------------------------------
  std::printf("Energy per prediction (calibrated cost models):\n");
  std::printf("  CNN on the Raspberry Pi:  %6.1f J  (%.1f s)\n",
              ml::edge_cnn_prediction_energy(side),
              ml::rpi_cnn_compute().time_for(ml::resnet18_flops(side)));
  std::printf("  CNN on the cloud server:  %6.1f J  (%.1f s)\n",
              ml::cloud_cnn_compute().energy_for(ml::resnet18_flops(side)),
              ml::cloud_cnn_compute().time_for(ml::resnet18_flops(side)));
  std::printf("  SVM on the Raspberry Pi:  %6.1f J  (Table I row, incl. "
              "feature extraction)\n", 98.9);
  std::printf("\nBoth models agree with the paper: the verdicts match "
              "state-of-the-art accuracy and the model choice barely "
              "moves the edge's energy bill.\n");
  return 0;
}
