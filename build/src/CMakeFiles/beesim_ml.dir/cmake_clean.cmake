file(REMOVE_RECURSE
  "CMakeFiles/beesim_ml.dir/ml/costmodel.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/costmodel.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/layers.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/layers.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/network.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/network.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/serialize.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/serialize.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/svm.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/svm.cpp.o.d"
  "CMakeFiles/beesim_ml.dir/ml/tensor.cpp.o"
  "CMakeFiles/beesim_ml.dir/ml/tensor.cpp.o.d"
  "libbeesim_ml.a"
  "libbeesim_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
