#include "util/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/catalog.hpp"
#include "util/parallel.hpp"

namespace beesim::util {
namespace {

// Worker identity of the calling thread: index into the pool's deque
// array, or -1 for external (issuer) threads. Set once per worker at
// startup.
thread_local int t_worker_index = -1;

// Parallel-region nesting depth of the calling thread (issuer or
// worker). Non-zero while a parallel_for body runs on this thread.
thread_local int t_region_depth = 0;

/// Epoch-guarded sleep for idle workers. The classic eventcount shape:
/// a sleeper reads the epoch (`prepare`), re-checks the queues, and only
/// then sleeps (`wait`) — the wait refuses to block if the epoch moved
/// in between. A producer makes its work visible first and bumps the
/// epoch second, so every interleaving either lets the sleeper see the
/// work during its re-check or see the epoch change; a wakeup can never
/// fall between the cracks.
class EventCount {
 public:
  std::uint64_t prepare() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  void wait(std::uint64_t key) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return epoch_.load(std::memory_order_relaxed) != key;
    });
  }

  void notify_all() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Shared control block of one parallel region, heap-allocated so helper
/// tasks still queued after the region completes hold a valid reference:
/// a straggler finds the index cursor exhausted and releases without
/// touching the caller's function, which may already be gone. Freed when
/// the last reference — issuer or queued helper — drops.
struct JobCtl {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t total_chunks = 0;

  /// Next unclaimed index; participants claim [next, next+chunk) ranges.
  std::atomic<std::size_t> next{0};
  /// Chunks fully executed. Reaches total_chunks exactly once.
  std::atomic<std::size_t> chunks_done{0};
  /// Issuer + every pushed helper task.
  std::atomic<std::uint32_t> refs{1};

  std::mutex mutex;
  std::condition_variable cv;
  bool complete = false;  // guarded by mutex

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
};

void release_job(JobCtl* job) {
  if (job->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete job;
}

/// Claims and executes chunks of `job` until the cursor is exhausted.
/// Runs on the issuer and on every worker that picked up a helper task;
/// whoever finishes the last chunk signals the issuer. Exceptions are
/// captured per index, lowest index kept.
void participate(JobCtl* job) {
  ++t_region_depth;
  for (;;) {
    const std::size_t begin =
        job->next.fetch_add(job->chunk, std::memory_order_relaxed);
    if (begin >= job->n) break;
    const std::size_t end = std::min(begin + job->chunk, job->n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*job->fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(job->error_mutex);
        if (!job->first_error || i < job->first_error_index) {
          job->first_error = std::current_exception();
          job->first_error_index = i;
        }
      }
    }
    // acq_rel: the final increment synchronizes with every earlier one,
    // so the issuer observing completion observes all body writes.
    if (job->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->total_chunks) {
      {
        const std::lock_guard<std::mutex> lock(job->mutex);
        job->complete = true;
      }
      job->cv.notify_all();
    }
  }
  --t_region_depth;
}

}  // namespace

struct TaskPool::Impl {
  /// Chase–Lev work-stealing deque of JobCtl pointers (Le et al.,
  /// "Correct and Efficient Work-Stealing for Weak Memory Models"). The
  /// owning worker pushes and pops at the bottom (LIFO, lock-free);
  /// thieves steal at the top (FIFO) racing through one CAS. Cells are
  /// atomics, so the owner/thief race on a cell is defined behavior and
  /// ThreadSanitizer-clean. The buffer grows by retiring the old array
  /// (a thief may still be reading it) rather than freeing it.
  class Deque {
   public:
    explicit Deque(std::size_t capacity = 256) {
      buffer_.store(make_buffer(capacity), std::memory_order_relaxed);
    }

    void push(JobCtl* job) {  // owner only
      const std::int64_t b = bottom_.load(std::memory_order_relaxed);
      const std::int64_t t = top_.load(std::memory_order_acquire);
      Buffer* buf = buffer_.load(std::memory_order_relaxed);
      if (b - t > buf->capacity - 1) {
        grow(b, t);
        buf = buffer_.load(std::memory_order_relaxed);
      }
      buf->cells[static_cast<std::size_t>(b & buf->mask)].store(
          job, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }

    bool pop(JobCtl*& out) {  // owner only
      const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      Buffer* buf = buffer_.load(std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      std::int64_t t = top_.load(std::memory_order_relaxed);
      if (t > b) {  // empty: restore
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      out = buf->cells[static_cast<std::size_t>(b & buf->mask)].load(
          std::memory_order_relaxed);
      if (t == b) {  // last element: race the thieves for it
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }

    bool steal(JobCtl*& out) {  // any thread
      std::int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return false;
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      out = buf->cells[static_cast<std::size_t>(t & buf->mask)].load(
          std::memory_order_relaxed);
      return top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    }

    bool maybe_nonempty() const noexcept {
      return bottom_.load(std::memory_order_relaxed) >
             top_.load(std::memory_order_relaxed);
    }

   private:
    struct Buffer {
      std::int64_t capacity = 0;
      std::int64_t mask = 0;
      std::unique_ptr<std::atomic<JobCtl*>[]> cells;
    };

    Buffer* make_buffer(std::size_t capacity) {
      auto buf = std::make_unique<Buffer>();
      buf->capacity = static_cast<std::int64_t>(capacity);
      buf->mask = buf->capacity - 1;
      buf->cells = std::make_unique<std::atomic<JobCtl*>[]>(capacity);
      Buffer* raw = buf.get();
      retired_.push_back(std::move(buf));
      return raw;
    }

    void grow(std::int64_t b, std::int64_t t) {  // owner only
      Buffer* old = buffer_.load(std::memory_order_relaxed);
      Buffer* bigger =
          make_buffer(static_cast<std::size_t>(old->capacity) * 2);
      for (std::int64_t i = t; i < b; ++i)
        bigger->cells[static_cast<std::size_t>(i & bigger->mask)].store(
            old->cells[static_cast<std::size_t>(i & old->mask)].load(
                std::memory_order_relaxed),
            std::memory_order_relaxed);
      buffer_.store(bigger, std::memory_order_release);
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_{nullptr};
    // Old buffers stay alive until the deque dies: a thief may hold a
    // pointer read before a grow. Mutated by the owner only.
    std::vector<std::unique_ptr<Buffer>> retired_;
  };

  std::vector<std::unique_ptr<Deque>> deques;
  std::vector<std::thread> threads;

  // External (non-worker) submissions land here; workers drain it
  // alongside stealing. Low traffic — one batch of pushes per region
  // issued off-pool — so a mutex is fine.
  std::mutex inject_mutex;
  std::deque<JobCtl*> inject;
  std::atomic<std::size_t> inject_size{0};

  EventCount ec;
  std::atomic<bool> stop{false};

  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
  // High-water mark of each lifetime total already published to the obs
  // counters (CAS-forward, so concurrent issuers each publish a disjoint
  // delta exactly once).
  std::atomic<std::uint64_t> published_tasks{0};
  std::atomic<std::uint64_t> published_steals{0};
  std::atomic<std::uint64_t> published_parks{0};

  bool pop_inject(JobCtl*& out) {
    if (inject_size.load(std::memory_order_acquire) == 0) return false;
    const std::lock_guard<std::mutex> lock(inject_mutex);
    if (inject.empty()) return false;
    out = inject.front();
    inject.pop_front();
    inject_size.store(inject.size(), std::memory_order_release);
    return true;
  }

  /// One task off the pool, preferring the caller's own deque, then the
  /// injection queue, then steals from siblings.
  bool find_task(unsigned self, JobCtl*& out) {
    if (deques[self]->pop(out)) return true;
    if (pop_inject(out)) return true;
    const unsigned count = static_cast<unsigned>(deques.size());
    for (unsigned k = 1; k < count; ++k) {
      const unsigned victim = (self + k) % count;
      if (deques[victim]->steal(out)) {
        steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  bool maybe_work() const noexcept {
    if (inject_size.load(std::memory_order_relaxed) > 0) return true;
    for (const auto& d : deques)
      if (d->maybe_nonempty()) return true;
    return false;
  }

  void worker_main(unsigned self) {
    t_worker_index = static_cast<int>(self);
    // Brief spin between queue sweeps before parking: regions issued
    // back to back (the common bench/serving shape) never pay a futex
    // round-trip per dispatch.
    constexpr int kSpinSweeps = 64;
    int idle_sweeps = 0;
    for (;;) {
      JobCtl* job = nullptr;
      if (find_task(self, job)) {
        idle_sweeps = 0;
        tasks.fetch_add(1, std::memory_order_relaxed);
        participate(job);
        release_job(job);
        continue;
      }
      if (stop.load(std::memory_order_acquire)) return;
      if (++idle_sweeps < kSpinSweeps) {
        std::this_thread::yield();
        continue;
      }
      idle_sweeps = 0;
      const std::uint64_t key = ec.prepare();
      if (stop.load(std::memory_order_acquire) || maybe_work()) continue;
      parks.fetch_add(1, std::memory_order_relaxed);
      ec.wait(key);
    }
  }

  /// Publishes the delta between a lifetime total and its published
  /// high-water mark to an obs counter. CAS-forward: whichever thread
  /// advances the mark owns exactly that delta.
  static void publish(obs::Counter& counter,
                      std::atomic<std::uint64_t>& total,
                      std::atomic<std::uint64_t>& published) {
    const std::uint64_t current = total.load(std::memory_order_relaxed);
    std::uint64_t mark = published.load(std::memory_order_relaxed);
    while (mark < current) {
      if (published.compare_exchange_weak(mark, current,
                                          std::memory_order_relaxed)) {
        counter.inc(current - mark);
        return;
      }
    }
  }

  void publish_metrics() {
    namespace m = obs::metric;
    static auto& tasks_counter = obs::registry().counter(m::kPoolTasks);
    static auto& steals_counter = obs::registry().counter(m::kPoolSteals);
    static auto& parks_counter = obs::registry().counter(m::kPoolParks);
    publish(tasks_counter, tasks, published_tasks);
    publish(steals_counter, steals, published_steals);
    publish(parks_counter, parks, published_parks);
  }
};

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool() : impl_(new Impl) {
  // The issuing thread is always a region's first participant, so
  // hardware_concurrency - 1 workers saturate the machine without
  // oversubscribing it.
  const unsigned hw = default_thread_count();
  worker_count_ = hw > 1 ? hw - 1 : 0;
  impl_->deques.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i)
    impl_->deques.push_back(std::make_unique<Impl::Deque>());
  impl_->threads.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i)
    impl_->threads.emplace_back([this, i] { impl_->worker_main(i); });
}

TaskPool::~TaskPool() {
  impl_->stop.store(true, std::memory_order_release);
  impl_->ec.notify_all();
  for (auto& thread : impl_->threads)
    if (thread.joinable()) thread.join();
  delete impl_;
}

bool TaskPool::in_region() noexcept { return t_region_depth > 0; }

TaskPool::Stats TaskPool::stats() const noexcept {
  Stats s;
  s.tasks = impl_->tasks.load(std::memory_order_relaxed);
  s.steals = impl_->steals.load(std::memory_order_relaxed);
  s.parks = impl_->parks.load(std::memory_order_relaxed);
  return s;
}

void TaskPool::run(std::size_t n,
                   const std::function<void(std::size_t)>& fn,
                   unsigned max_participants) {
  Impl& impl = *impl_;
  const std::size_t participants =
      std::min<std::size_t>(std::max(1u, max_participants), n);
  // Chunked index claiming: a handful of chunks per participant keeps
  // the shared-cursor traffic negligible while still load-balancing
  // uneven bodies. chunk = 1 whenever indices are scarce.
  const std::size_t chunk = std::max<std::size_t>(1, n / (participants * 4));
  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  // Helpers beyond the worker count would only queue stale tasks; the
  // issuer is the remaining participant.
  const std::size_t helpers = std::min<std::size_t>(
      {participants - 1, total_chunks - 1, impl.deques.size()});

  auto* job = new JobCtl;
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->total_chunks = total_chunks;
  job->refs.store(1 + static_cast<std::uint32_t>(helpers),
                  std::memory_order_relaxed);

  if (helpers > 0) {
    if (t_worker_index >= 0) {
      // Nested region: park the helper tasks on this worker's own deque
      // where siblings steal them — task-tree composition instead of the
      // old serial fallback, with the pool's worker count as the global
      // parallelism bound.
      auto& own = *impl.deques[static_cast<std::size_t>(t_worker_index)];
      for (std::size_t h = 0; h < helpers; ++h) own.push(job);
    } else {
      const std::lock_guard<std::mutex> lock(impl.inject_mutex);
      for (std::size_t h = 0; h < helpers; ++h) impl.inject.push_back(job);
      impl.inject_size.store(impl.inject.size(), std::memory_order_release);
    }
    impl.ec.notify_all();
  }

  // The issuer claims chunks like any worker, which guarantees every
  // index runs even if no helper is ever picked up.
  participate(job);

  if (job->chunks_done.load(std::memory_order_acquire) !=
      job->total_chunks) {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock, [&] { return job->complete; });
  }

  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(job->error_mutex);
    error = job->first_error;
  }
  release_job(job);

  if (obs::enabled()) impl.publish_metrics();
  if (error) std::rethrow_exception(error);
}

}  // namespace beesim::util
