file(REMOVE_RECURSE
  "CMakeFiles/test_orchestrator.dir/test_orchestrator.cpp.o"
  "CMakeFiles/test_orchestrator.dir/test_orchestrator.cpp.o.d"
  "test_orchestrator"
  "test_orchestrator.pdb"
  "test_orchestrator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
