# Empty dependencies file for queen_detection_pipeline.
# This may be replaced when dependencies are built.
