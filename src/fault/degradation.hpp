#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace beesim::fault {

/// Bounded store-and-forward byte buffer with exact drop accounting — the
/// degradation policy that rides out link outages: payloads produced while
/// the uplink is down are queued locally and drained when connectivity
/// returns; whatever exceeds the bound is dropped and counted, never lost
/// silently. Pure bookkeeping (no clock, no RNG), so outcomes are
/// deterministic and the resilience sweep stays bit-reproducible.
class StoreAndForwardBuffer {
 public:
  /// A buffer holding at most `capacity_bytes` (must be >= 0; a zero
  /// capacity drops everything offered, which models a store-less client).
  explicit StoreAndForwardBuffer(double capacity_bytes);

  /// Offers `bytes` for queueing; returns the bytes accepted. The
  /// remainder is dropped and added to the drop accounting (and the
  /// `fault.buffer.*` metrics when observability is on).
  double offer(double bytes);

  /// Drains up to `budget_bytes` from the buffer; returns the bytes
  /// actually recovered.
  double drain(double budget_bytes);

  /// Bytes currently queued.
  double buffered() const noexcept { return buffered_; }
  /// Total bytes dropped because the buffer was full.
  double dropped_bytes() const noexcept { return dropped_bytes_; }
  /// Number of offers that dropped at least one byte.
  std::uint64_t drop_events() const noexcept { return drop_events_; }
  /// Total bytes ever accepted into the buffer.
  double enqueued_bytes() const noexcept { return enqueued_bytes_; }
  /// High-water mark of the queue.
  double peak_bytes() const noexcept { return peak_bytes_; }
  /// The configured bound.
  double capacity() const noexcept { return capacity_; }

 private:
  double capacity_;
  double buffered_ = 0.0;
  double dropped_bytes_ = 0.0;
  double enqueued_bytes_ = 0.0;
  double peak_bytes_ = 0.0;
  std::uint64_t drop_events_ = 0;
};

}  // namespace beesim::fault
