#include "device/sim_device.hpp"

#include <stdexcept>

namespace beesim::device {

SimDevice::SimDevice(sim::Engine& engine, DeviceProfile profile,
                     std::uint64_t seed)
    : engine_(&engine), profile_(std::move(profile)), rng_(seed) {
  meter_.set_power(engine.now(), profile_.off_power, "off");
}

void SimDevice::enter_sleep() {
  if (busy_) throw std::logic_error("SimDevice: sleep while busy");
  meter_.set_power(engine_->now(), profile_.sleep_power, "sleep");
}

void SimDevice::power_off() {
  if (busy_) throw std::logic_error("SimDevice: power off while busy");
  meter_.set_power(engine_->now(), profile_.off_power, "off");
}

void SimDevice::enter_idle() {
  if (busy_) throw std::logic_error("SimDevice: idle while busy");
  meter_.set_power(engine_->now(), profile_.idle_power, "idle");
}

void SimDevice::run_sequence(const std::vector<std::string>& task_names,
                             DoneCallback done) {
  TaskSequence tasks;
  tasks.reserve(task_names.size());
  for (const auto& name : task_names) tasks.push_back(profile_.task(name));
  run_spec_sequence(std::move(tasks), std::move(done));
}

void SimDevice::run_spec_sequence(TaskSequence tasks, DoneCallback done) {
  if (busy_) throw std::logic_error("SimDevice: already busy");
  busy_ = true;
  active_tasks_ = std::move(tasks);
  task_index_ = 0;
  done_ = std::move(done);
  step(*engine_);
}

void SimDevice::step(sim::Engine& engine) {
  if (task_index_ == active_tasks_.size()) {
    busy_ = false;
    ++completed_;
    enter_sleep();
    // Clear the sequence state before firing `done`: the callback may
    // immediately start a new sequence on this very device.
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    active_tasks_.clear();
    if (done) done(engine);
    return;
  }
  const TaskSpec& task = active_tasks_[task_index_];
  meter_.set_power(engine.now(), task.power, task.name);
  const util::Seconds duration = task.sampled_duration(rng_);
  ++task_index_;
  engine.schedule_after(duration,
                        [this](sim::Engine& eng) { step(eng); });
}

}  // namespace beesim::device
