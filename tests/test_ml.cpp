#include <gtest/gtest.h>

#include <cmath>

#include "audio/dataset.hpp"
#include "ml/costmodel.hpp"
#include "ml/layers.hpp"
#include "ml/metrics.hpp"
#include "ml/network.hpp"
#include "ml/svm.hpp"
#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace ml = beesim::ml;

// ------------------------------------------------------------------- Tensor

TEST(Tensor, ShapeAndFill) {
  ml::Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_FLOAT_EQ(t.at2(1, 2), 1.5f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t.at2(0, 0), 0.0f);
}

TEST(Tensor, FourDAccessRowMajor) {
  ml::Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(ml::Tensor(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(ml::Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(ml::Tensor({1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Tensor, BoundsChecking) {
  ml::Tensor t({2, 2});
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
  ml::Tensor t4({1, 1, 2, 2});
  EXPECT_THROW(t4.at4(0, 1, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at4(0, 0, 0, 0), std::logic_error);  // wrong rank
}

// ------------------------------------------------------------------- Layers

TEST(ReLU, ForwardAndBackward) {
  ml::ReLU relu;
  ml::Tensor x({1, 4});
  x[0] = -1.0f; x[1] = 2.0f; x[2] = 0.0f; x[3] = -3.0f;
  const auto y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  ml::Tensor g({1, 4}, 1.0f);
  const auto gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(MaxPool2, PicksMaximaAndRoutesGradient) {
  ml::MaxPool2 pool;
  ml::Tensor x({1, 1, 2, 2});
  x[0] = 1.0f; x[1] = 5.0f; x[2] = 3.0f; x[3] = 2.0f;
  const auto y = pool.forward(x, true);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  ml::Tensor g({1, 1, 1, 1}, 2.0f);
  const auto gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);  // gradient lands on the argmax only
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(GlobalAvgPool, AveragesPlanes) {
  ml::GlobalAvgPool gap;
  ml::Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 4.0f;       // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = 8.0f;       // channel 1
  const auto y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 8.0f);
  ml::Tensor g({1, 2}, 1.0f);
  const auto gx = gap.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.25f);  // spread uniformly
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  beesim::util::Rng rng(1);
  ml::Conv2d conv(1, 1, 3, rng);
  // Hand-set the kernel to a centered delta, zero bias: output == input.
  ml::Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(i) * 0.1f;
  // Overwrite weights via forward difference: build a fresh conv whose
  // weights we control through its public surface is not possible, so we
  // verify linearity instead: f(2x) == 2 f(x) for zero bias nets is not
  // guaranteed (bias), so check f(x+x') - f(x') is linear in x.
  const auto y1 = conv.forward(x, false);
  ml::Tensor x2 = x;
  for (std::size_t i = 0; i < x2.size(); ++i) x2[i] *= 3.0f;
  const auto y2 = conv.forward(x2, false);
  ml::Tensor zero({1, 1, 4, 4}, 0.0f);
  const auto y0 = conv.forward(zero, false);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(y2[i] - y0[i], 3.0f * (y1[i] - y0[i]), 1e-4f);
}

/// Numerical gradient check on a tiny conv net: the analytic input
/// gradient must match finite differences.
TEST(Conv2d, GradientMatchesFiniteDifference) {
  beesim::util::Rng rng(3);
  ml::Conv2d conv(1, 2, 3, rng);
  ml::Tensor x({1, 1, 5, 5});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.normal(0.0, 1.0));

  auto loss_of = [&](const ml::Tensor& input) {
    const auto y = conv.forward(input, false);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      loss += 0.5 * static_cast<double>(y[i]) * static_cast<double>(y[i]);
    return loss;
  };

  // Analytic gradient.
  const auto y = conv.forward(x, true);
  ml::Tensor grad_y = y;  // dL/dy = y for L = 0.5*||y||^2
  const auto grad_x = conv.backward(grad_y);

  const float eps = 1e-3f;
  for (std::size_t i : {0u, 7u, 12u, 24u}) {
    ml::Tensor xp = x;
    ml::Tensor xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_x[i], numeric, 2e-2)
        << "input gradient mismatch at " << i;
  }
}

TEST(Linear, GradientMatchesFiniteDifference) {
  beesim::util::Rng rng(4);
  ml::Linear lin(6, 3, rng);
  ml::Tensor x({2, 6});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  auto loss_of = [&](const ml::Tensor& input) {
    const auto y = lin.forward(input, false);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      loss += 0.5 * static_cast<double>(y[i]) * static_cast<double>(y[i]);
    return loss;
  };
  const auto y = lin.forward(x, true);
  const auto grad_x = lin.backward(y);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ml::Tensor xp = x;
    ml::Tensor xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_x[i], numeric, 2e-2);
  }
}

TEST(SoftmaxCrossEntropy, PerfectPredictionHasLowLossAndSmallGrad) {
  ml::Tensor logits({1, 2});
  logits.at2(0, 0) = 10.0f;
  logits.at2(0, 1) = -10.0f;
  ml::Tensor grad;
  const float loss =
      ml::SoftmaxCrossEntropy::loss_and_grad(logits, {0}, grad);
  EXPECT_LT(loss, 1e-6f);
  EXPECT_NEAR(grad.at2(0, 0), 0.0f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLog2Loss) {
  ml::Tensor logits({1, 2}, 0.0f);
  ml::Tensor grad;
  const float loss =
      ml::SoftmaxCrossEntropy::loss_and_grad(logits, {1}, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-6f);
  EXPECT_NEAR(grad.at2(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(grad.at2(0, 1), -0.5f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, PredictTakesArgmax) {
  ml::Tensor logits({2, 3});
  logits.at2(0, 1) = 5.0f;
  logits.at2(1, 2) = 5.0f;
  const auto preds = ml::SoftmaxCrossEntropy::predict(logits);
  EXPECT_EQ(preds, (std::vector<std::size_t>{1, 2}));
}

// ------------------------------------------------------------------ Network

TEST(Network, LearnsLinearlySeparableToyProblem) {
  // Two 8x8 image classes: bright top half vs bright bottom half.
  std::vector<beesim::dsp::Matrix> images;
  std::vector<std::size_t> labels;
  beesim::util::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    beesim::dsp::Matrix img(8, 8);
    const bool top = i % 2 == 0;
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 8; ++c) {
        const bool bright = top ? r < 4 : r >= 4;
        img(r, c) = (bright ? 0.9 : 0.1) + rng.normal(0.0, 0.05);
      }
    images.push_back(img);
    labels.push_back(top ? 0 : 1);
  }
  beesim::util::Rng init(6);
  auto net = ml::make_queen_cnn(init, 4, 8);
  ml::TrainOptions opt;
  opt.epochs = 15;
  opt.learning_rate = 0.1f;
  const auto report = ml::train_classifier(net, images, labels, opt);
  EXPECT_GT(report.final_train_accuracy, 0.95f);
  // Loss should drop substantially.
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front() * 0.5f);
}

TEST(Network, ParameterCountIsPositiveAndStable) {
  beesim::util::Rng rng(7);
  auto net = ml::make_queen_cnn(rng, 8, 32);
  EXPECT_GT(net.parameter_count(), 1000u);
  EXPECT_EQ(net.layer_count(), 8u);
}

TEST(Network, ImagesToTensorValidates) {
  std::vector<beesim::dsp::Matrix> imgs{beesim::dsp::Matrix(4, 4),
                                        beesim::dsp::Matrix(5, 4)};
  EXPECT_THROW(ml::images_to_tensor(imgs), std::invalid_argument);
  EXPECT_THROW(ml::images_to_tensor({}), std::invalid_argument);
}

// ---------------------------------------------------------------------- SVM

TEST(Svm, SeparatesGaussianBlobs) {
  beesim::util::Rng rng(8);
  std::vector<std::vector<double>> x;
  std::vector<bool> y;
  for (int i = 0; i < 80; ++i) {
    const bool cls = i % 2 == 0;
    const double cx = cls ? 2.0 : -2.0;
    x.push_back({rng.normal(cx, 0.5), rng.normal(cx, 0.5)});
    y.push_back(cls);
  }
  ml::SvmClassifier::Params p;
  p.c = 10.0;
  p.gamma = 0.5;
  ml::SvmClassifier svm(p);
  svm.fit(x, y);
  EXPECT_TRUE(svm.trained());
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (svm.predict(x[i]) == y[i]) ++correct;
  EXPECT_GE(correct, 78);
  // Fresh points.
  EXPECT_TRUE(svm.predict({2.2, 1.8}));
  EXPECT_FALSE(svm.predict({-2.2, -1.8}));
}

TEST(Svm, NonlinearXorNeedsRbf) {
  beesim::util::Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<bool> y;
  for (int i = 0; i < 120; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(a * b > 0.0);  // XOR-style quadrants
  }
  ml::SvmClassifier::Params p;
  p.c = 50.0;
  p.gamma = 2.0;
  ml::SvmClassifier svm(p);
  svm.fit(x, y);
  int correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (svm.predict(x[i]) == y[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.size()),
            0.9);
}

TEST(Svm, RejectsDegenerateInputs) {
  ml::SvmClassifier svm;
  EXPECT_THROW(svm.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(svm.fit({{1.0}, {2.0}}, {true, true}),
               std::invalid_argument);  // one class
  EXPECT_THROW(svm.fit({{1.0}, {2.0, 3.0}}, {true, false}),
               std::invalid_argument);  // ragged
  EXPECT_THROW(svm.decision({1.0}), std::logic_error);  // untrained
}

TEST(Svm, DecisionSignMatchesPrediction) {
  beesim::util::Rng rng(10);
  std::vector<std::vector<double>> x;
  std::vector<bool> y;
  for (int i = 0; i < 40; ++i) {
    const bool cls = i % 2 == 0;
    x.push_back({rng.normal(cls ? 1.5 : -1.5, 0.4)});
    y.push_back(cls);
  }
  ml::SvmClassifier::Params p;
  p.gamma = 1.0;
  ml::SvmClassifier svm(p);
  svm.fit(x, y);
  for (double v : {-2.0, -1.0, 1.0, 2.0})
    EXPECT_EQ(svm.predict({v}), svm.decision({v}) > 0.0);
}

TEST(StandardScaler, NormalizesColumns) {
  ml::StandardScaler scaler;
  scaler.fit({{0.0, 100.0}, {2.0, 300.0}, {4.0, 500.0}});
  const auto t = scaler.transform({2.0, 300.0});
  EXPECT_NEAR(t[0], 0.0, 1e-9);
  EXPECT_NEAR(t[1], 0.0, 1e-9);
  const auto hi = scaler.transform({4.0, 500.0});
  EXPECT_GT(hi[0], 1.0);
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ Metrics

TEST(Metrics, ConfusionCountsAndScores) {
  const auto cm = ml::confusion({true, true, false, false, true},
                                {true, false, false, true, true});
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 2.0 / 3.0);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, EmptyConfusionIsZeroSafe) {
  ml::ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Metrics, AccuracyValidatesSizes) {
  EXPECT_THROW(ml::accuracy({1}, {1, 2}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(ml::accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
}

// --------------------------------------------------------------- Cost model

TEST(CostModel, ResNetFlopsScaleQuadratically) {
  const double f100 = ml::resnet18_flops(100);
  const double f200 = ml::resnet18_flops(200);
  // Doubling the side roughly quadruples the convolutional work (the
  // ratio sits slightly under 4 because strided stages ceil-divide odd
  // feature-map sizes).
  EXPECT_GT(f200 / f100, 3.2);
  EXPECT_LT(f200 / f100, 4.4);
  EXPECT_GT(f100, 1e8);  // hundreds of MFLOPs at 100x100
}

TEST(CostModel, FlopsMonotoneInSide) {
  double prev = 0.0;
  for (std::size_t side : {32u, 64u, 100u, 150u, 224u}) {
    const double f = ml::resnet18_flops(side);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(CostModel, RpiCalibrationHitsTableOneAnchor) {
  // Energy at 100x100 must equal Table I's 94.8 J by construction.
  EXPECT_NEAR(ml::edge_cnn_prediction_energy(100), 94.8, 1e-6);
}

TEST(CostModel, CloudIsFasterAndMorePowerful) {
  const auto rpi = ml::rpi_cnn_compute();
  const auto cloud = ml::cloud_cnn_compute();
  EXPECT_GT(cloud.effective_flops_per_s, rpi.effective_flops_per_s * 10.0);
  EXPECT_GT(cloud.active_power, rpi.active_power);
  // Cloud inference at 100x100 costs Table II's 108 J.
  EXPECT_NEAR(cloud.energy_for(ml::resnet18_flops(100)), 108.0, 1e-6);
}

TEST(CostModel, SvmAndMelFrontendScales) {
  EXPECT_GT(ml::svm_flops(200, 128), ml::svm_flops(100, 128));
  EXPECT_GT(ml::mel_frontend_flops(10.0), ml::mel_frontend_flops(1.0));
  EXPECT_THROW(ml::mel_frontend_flops(0.0), std::invalid_argument);
}

// --------------------------------------- Fig 5 accuracy-resolution property

/// Parameterized resolution sweep on a small dataset: the CNN must be
/// usable at every Fig 5 image side (shape preserved through resize+GAP).
class ResolutionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResolutionSweep, CnnTrainsAtEverySide) {
  const std::size_t side = GetParam();
  beesim::audio::DatasetParams params;
  params.count = 24;
  params.clip_seconds = 0.6;
  const auto ds = beesim::audio::generate_queen_dataset(params);
  std::vector<beesim::dsp::Matrix> images;
  std::vector<std::size_t> labels;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    images.push_back(ds.image(i, side));
    labels.push_back(ds.examples[i].queen_present ? 1u : 0u);
  }
  beesim::util::Rng rng(11);
  auto net = ml::make_queen_cnn(rng, 4, side);
  ml::TrainOptions opt;
  opt.epochs = 4;
  const auto report = ml::train_classifier(net, images, labels, opt);
  // Must at least beat random guessing on train data at useful sizes.
  EXPECT_GE(report.final_train_accuracy, 0.5f);
  EXPECT_EQ(report.epoch_loss.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Fig5Sides, ResolutionSweep,
                         ::testing::Values(20, 50, 100));
