
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/autonomy.cpp" "src/CMakeFiles/beesim_device.dir/device/autonomy.cpp.o" "gcc" "src/CMakeFiles/beesim_device.dir/device/autonomy.cpp.o.d"
  "/root/repo/src/device/profiles.cpp" "src/CMakeFiles/beesim_device.dir/device/profiles.cpp.o" "gcc" "src/CMakeFiles/beesim_device.dir/device/profiles.cpp.o.d"
  "/root/repo/src/device/routine.cpp" "src/CMakeFiles/beesim_device.dir/device/routine.cpp.o" "gcc" "src/CMakeFiles/beesim_device.dir/device/routine.cpp.o.d"
  "/root/repo/src/device/sim_device.cpp" "src/CMakeFiles/beesim_device.dir/device/sim_device.cpp.o" "gcc" "src/CMakeFiles/beesim_device.dir/device/sim_device.cpp.o.d"
  "/root/repo/src/device/task.cpp" "src/CMakeFiles/beesim_device.dir/device/task.cpp.o" "gcc" "src/CMakeFiles/beesim_device.dir/device/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/beesim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
