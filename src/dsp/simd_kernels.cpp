#include "dsp/simd_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd_kernels_detail.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace beesim::dsp {

using Complex = std::complex<double>;

// ------------------------------------------------------------ scalar tier
//
// The scalar kernels are the bit-identity oracle: per output element they
// perform exactly the operations the pre-dispatch code performed (the
// f32 GEMM panel is the former ml/gemm.cpp kernel verbatim), and every
// SIMD tier replays the same per-element operation sequence across
// independent vector lanes.

namespace detail {
namespace {

constexpr std::size_t kRowPanel = 4;

/// C panel of `rows` (<= kRowPanel) rows: acc[r][j] over the full K
/// extent. The j loop is the vector axis; a[r][p] is a broadcast scalar.
void panel(std::size_t rows, std::size_t n, std::size_t k, const float* a,
           std::size_t lda, const float* b, const float* bias, float* c) {
  // Column tiles sized to keep kRowPanel accumulator rows in registers /
  // L1 while B streams through.
  constexpr std::size_t kColTile = 64;
  float acc[kRowPanel][kColTile];
  for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
    const std::size_t jn = std::min(kColTile, n - j0);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < jn; ++j) acc[r][j] = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      const float* brow = b + p * n + j0;
      for (std::size_t r = 0; r < rows; ++r) {
        const float av = a[r * lda + p];
        for (std::size_t j = 0; j < jn; ++j) acc[r][j] += av * brow[j];
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c + r * n + j0;
      const float bv = bias[r];
      for (std::size_t j = 0; j < jn; ++j) crow[j] = bv + acc[r][j];
    }
  }
}

}  // namespace

void sgemm_bias_f32_scalar(std::size_t m, std::size_t n, std::size_t k,
                           const float* a, const float* b, const float* bias,
                           float* c) {
  for (std::size_t i0 = 0; i0 < m; i0 += kRowPanel) {
    const std::size_t rows = std::min(kRowPanel, m - i0);
    panel(rows, n, k, a + i0 * k, k, b, bias + i0, c + i0 * n);
  }
}

void sgemm_bias_bf16_scalar(std::size_t m, std::size_t n, std::size_t k,
                            const std::uint16_t* a, const std::uint16_t* b,
                            const float* bias, float* c) {
  constexpr std::size_t kColTile = 64;
  float acc[kColTile];
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint16_t* arow = a + i * k;
    for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
      const std::size_t jn = std::min(kColTile, n - j0);
      for (std::size_t j = 0; j < jn; ++j) acc[j] = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = bf16_bits_to_f32(arow[p]);
        const std::uint16_t* brow = b + p * n + j0;
        for (std::size_t j = 0; j < jn; ++j)
          acc[j] += av * bf16_bits_to_f32(brow[j]);
      }
      float* crow = c + i * n + j0;
      const float bv = bias[i];
      for (std::size_t j = 0; j < jn; ++j) crow[j] = bv + acc[j];
    }
  }
}

void sgemm_bias_s8_scalar(std::size_t m, std::size_t n, std::size_t k,
                          const std::int8_t* a, const float* a_scales,
                          const std::int8_t* b, float b_scale,
                          const float* bias, float* c) {
  constexpr std::size_t kColTile = 64;
  std::int32_t acc[kColTile];
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    const float scale = a_scales[i] * b_scale;
    const float bv = bias[i];
    for (std::size_t j0 = 0; j0 < n; j0 += kColTile) {
      const std::size_t jn = std::min(kColTile, n - j0);
      for (std::size_t j = 0; j < jn; ++j) acc[j] = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const std::int32_t av = arow[p];
        const std::int8_t* brow = b + p * n + j0;
        for (std::size_t j = 0; j < jn; ++j)
          acc[j] += av * static_cast<std::int32_t>(brow[j]);
      }
      float* crow = c + i * n + j0;
      for (std::size_t j = 0; j < jn; ++j)
        crow[j] = std::fma(scale, static_cast<float>(acc[j]), bv);
    }
  }
}

void fft_stage_scalar(Complex* data, std::size_t n, std::size_t len,
                      const Complex* tw) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    Complex* lo = data + i;
    Complex* hi = lo + half;
    for (std::size_t j = 0; j < half; ++j) {
      const Complex u = lo[j];
      const Complex v = hi[j] * tw[j];
      lo[j] = u + v;
      hi[j] = u - v;
    }
  }
}

void axpy_scalar(double w, const double* in, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += w * in[i];
}

void welford5_add_scalar(Welford5* s, const double* xs, std::size_t count) {
  for (std::size_t r = 0; r < count; ++r) {
    const double* x = xs + r * 5;
    ++s->n;
    const double dn = static_cast<double>(s->n);
    for (std::size_t l = 0; l < 5; ++l) {
      // util::RunningStats::add, verbatim (the same operations in the
      // same order — the columnar checkpoint state depends on it).
      const double v = x[l];
      s->sum[l] += v;
      const double delta = v - s->mean[l];
      s->mean[l] += delta / dn;
      s->m2[l] += delta * (v - s->mean[l]);
      s->min[l] = std::min(s->min[l], v);
      s->max[l] = std::max(s->max[l], v);
    }
  }
}

}  // namespace detail

// -------------------------------------------------------------- SSE2 tier
//
// Explicit 128-bit kernels for the x86-64 baseline. blendv/addsub are
// SSE4.1/SSE3, so selects use cmp + and/andnot/or and complex products
// recombine sub/add lanes with shufpd — both reproduce the scalar
// operation per lane exactly.

#if defined(__SSE2__)

namespace detail {
namespace {

void sgemm_bias_f32_sse2(std::size_t m, std::size_t n, std::size_t k,
                         const float* a, const float* b, const float* bias,
                         float* c) {
  const std::size_t jv = n & ~static_cast<std::size_t>(7);
  std::size_t i0 = 0;
  for (; i0 + 4 <= m; i0 += 4) {
    const float* a0 = a + (i0 + 0) * k;
    const float* a1 = a + (i0 + 1) * k;
    const float* a2 = a + (i0 + 2) * k;
    const float* a3 = a + (i0 + 3) * k;
    for (std::size_t j0 = 0; j0 < jv; j0 += 8) {
      __m128 c00 = _mm_setzero_ps(), c01 = _mm_setzero_ps();
      __m128 c10 = _mm_setzero_ps(), c11 = _mm_setzero_ps();
      __m128 c20 = _mm_setzero_ps(), c21 = _mm_setzero_ps();
      __m128 c30 = _mm_setzero_ps(), c31 = _mm_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const __m128 b0 = _mm_loadu_ps(brow);
        const __m128 b1 = _mm_loadu_ps(brow + 4);
        __m128 av = _mm_set1_ps(a0[p]);
        c00 = _mm_add_ps(c00, _mm_mul_ps(av, b0));
        c01 = _mm_add_ps(c01, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a1[p]);
        c10 = _mm_add_ps(c10, _mm_mul_ps(av, b0));
        c11 = _mm_add_ps(c11, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a2[p]);
        c20 = _mm_add_ps(c20, _mm_mul_ps(av, b0));
        c21 = _mm_add_ps(c21, _mm_mul_ps(av, b1));
        av = _mm_set1_ps(a3[p]);
        c30 = _mm_add_ps(c30, _mm_mul_ps(av, b0));
        c31 = _mm_add_ps(c31, _mm_mul_ps(av, b1));
      }
      float* crow = c + i0 * n + j0;
      __m128 bv = _mm_set1_ps(bias[i0 + 0]);
      _mm_storeu_ps(crow, _mm_add_ps(bv, c00));
      _mm_storeu_ps(crow + 4, _mm_add_ps(bv, c01));
      bv = _mm_set1_ps(bias[i0 + 1]);
      _mm_storeu_ps(crow + n, _mm_add_ps(bv, c10));
      _mm_storeu_ps(crow + n + 4, _mm_add_ps(bv, c11));
      bv = _mm_set1_ps(bias[i0 + 2]);
      _mm_storeu_ps(crow + 2 * n, _mm_add_ps(bv, c20));
      _mm_storeu_ps(crow + 2 * n + 4, _mm_add_ps(bv, c21));
      bv = _mm_set1_ps(bias[i0 + 3]);
      _mm_storeu_ps(crow + 3 * n, _mm_add_ps(bv, c30));
      _mm_storeu_ps(crow + 3 * n + 4, _mm_add_ps(bv, c31));
    }
    for (std::size_t r = 0; r < 4; ++r) {
      const float* arow = a + (i0 + r) * k;
      for (std::size_t j = jv; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * b[p * n + j];
        c[(i0 + r) * n + j] = bias[i0 + r] + acc;
      }
    }
  }
  for (; i0 < m; ++i0) {
    const float* arow = a + i0 * k;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * b[p * n + j];
      c[i0 * n + j] = bias[i0] + acc;
    }
  }
}

void fft_stage_sse2(Complex* data, std::size_t n, std::size_t len,
                    const Complex* tw) {
  const std::size_t half = len / 2;
  auto* d = reinterpret_cast<double*>(data);
  const auto* t = reinterpret_cast<const double*>(tw);
  for (std::size_t i = 0; i < n; i += len) {
    double* lo = d + 2 * i;
    double* hi = lo + 2 * half;
    for (std::size_t j = 0; j < half; ++j) {
      const __m128d u = _mm_loadu_pd(lo + 2 * j);
      const __m128d x = _mm_loadu_pd(hi + 2 * j);  // [a, b]
      const __m128d w = _mm_loadu_pd(t + 2 * j);   // [c, d]
      const __m128d wr = _mm_shuffle_pd(w, w, 0);  // [c, c]
      const __m128d wi = _mm_shuffle_pd(w, w, 3);  // [d, d]
      const __m128d xs = _mm_shuffle_pd(x, x, 1);  // [b, a]
      const __m128d t1 = _mm_mul_pd(x, wr);        // [ac, bc]
      const __m128d t2 = _mm_mul_pd(xs, wi);       // [bd, ad]
      // v = x*w: re = ac - bd, im = bc + ad (the scalar complex product's
      // two rounded ops per lane; the wasted opposite lanes are dropped).
      const __m128d v = _mm_shuffle_pd(_mm_sub_pd(t1, t2),
                                       _mm_add_pd(t1, t2), 2);
      _mm_storeu_pd(lo + 2 * j, _mm_add_pd(u, v));
      _mm_storeu_pd(hi + 2 * j, _mm_sub_pd(u, v));
    }
  }
}

void axpy_sse2(double w, const double* in, double* out, std::size_t n) {
  const __m128d wv = _mm_set1_pd(w);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(out + i, _mm_add_pd(_mm_loadu_pd(out + i),
                                      _mm_mul_pd(wv, _mm_loadu_pd(in + i))));
  for (; i < n; ++i) out[i] += w * in[i];
}

/// std::min(cur, x) selects x only on strict x < cur; cmplt + and/andnot
/// reproduces that exactly (including the first-argument tie-break on
/// equal values and signed zeros).
inline __m128d min_like_std(__m128d cur, __m128d x) {
  const __m128d mask = _mm_cmplt_pd(x, cur);
  return _mm_or_pd(_mm_and_pd(mask, x), _mm_andnot_pd(mask, cur));
}

inline __m128d max_like_std(__m128d cur, __m128d x) {
  const __m128d mask = _mm_cmplt_pd(cur, x);
  return _mm_or_pd(_mm_and_pd(mask, x), _mm_andnot_pd(mask, cur));
}

void welford5_add_sse2(Welford5* s, const double* xs, std::size_t count) {
  __m128d mean0 = _mm_loadu_pd(s->mean), mean1 = _mm_loadu_pd(s->mean + 2);
  __m128d m20 = _mm_loadu_pd(s->m2), m21 = _mm_loadu_pd(s->m2 + 2);
  __m128d sum0 = _mm_loadu_pd(s->sum), sum1 = _mm_loadu_pd(s->sum + 2);
  __m128d min0 = _mm_loadu_pd(s->min), min1 = _mm_loadu_pd(s->min + 2);
  __m128d max0 = _mm_loadu_pd(s->max), max1 = _mm_loadu_pd(s->max + 2);
  for (std::size_t r = 0; r < count; ++r) {
    const double* x = xs + r * 5;
    ++s->n;
    const __m128d dn = _mm_set1_pd(static_cast<double>(s->n));
    const __m128d x0 = _mm_loadu_pd(x);
    const __m128d x1 = _mm_loadu_pd(x + 2);
    sum0 = _mm_add_pd(sum0, x0);
    sum1 = _mm_add_pd(sum1, x1);
    const __m128d d0 = _mm_sub_pd(x0, mean0);
    const __m128d d1 = _mm_sub_pd(x1, mean1);
    mean0 = _mm_add_pd(mean0, _mm_div_pd(d0, dn));
    mean1 = _mm_add_pd(mean1, _mm_div_pd(d1, dn));
    m20 = _mm_add_pd(m20, _mm_mul_pd(d0, _mm_sub_pd(x0, mean0)));
    m21 = _mm_add_pd(m21, _mm_mul_pd(d1, _mm_sub_pd(x1, mean1)));
    min0 = min_like_std(min0, x0);
    min1 = min_like_std(min1, x1);
    max0 = max_like_std(max0, x0);
    max1 = max_like_std(max1, x1);
    // Fifth lane: the scalar recurrence.
    const double v = x[4];
    s->sum[4] += v;
    const double delta = v - s->mean[4];
    s->mean[4] += delta / static_cast<double>(s->n);
    s->m2[4] += delta * (v - s->mean[4]);
    s->min[4] = std::min(s->min[4], v);
    s->max[4] = std::max(s->max[4], v);
  }
  _mm_storeu_pd(s->mean, mean0);
  _mm_storeu_pd(s->mean + 2, mean1);
  _mm_storeu_pd(s->m2, m20);
  _mm_storeu_pd(s->m2 + 2, m21);
  _mm_storeu_pd(s->sum, sum0);
  _mm_storeu_pd(s->sum + 2, sum1);
  _mm_storeu_pd(s->min, min0);
  _mm_storeu_pd(s->min + 2, min1);
  _mm_storeu_pd(s->max, max0);
  _mm_storeu_pd(s->max + 2, max1);
}

}  // namespace
}  // namespace detail

#endif  // __SSE2__

// ------------------------------------------------------------- the tables

namespace {

constexpr KernelTable kScalarTable = {
    detail::sgemm_bias_f32_scalar, detail::sgemm_bias_bf16_scalar,
    detail::sgemm_bias_s8_scalar,  detail::fft_stage_scalar,
    detail::axpy_scalar,           detail::welford5_add_scalar,
};

#if defined(__SSE2__)
// bf16/int8 stay on the scalar code at this tier: without AVX2's 8-wide
// widening loads and madd there is little to gain over what the compiler
// already autovectorizes (results are identical either way).
constexpr KernelTable kSse2Table = {
    detail::sgemm_bias_f32_sse2, detail::sgemm_bias_bf16_scalar,
    detail::sgemm_bias_s8_scalar, detail::fft_stage_sse2,
    detail::axpy_sse2,            detail::welford5_add_sse2,
};
#else
constexpr KernelTable kSse2Table = kScalarTable;
#endif

constexpr KernelTable kAvx2Table = {
    detail::sgemm_bias_f32_avx2, detail::sgemm_bias_bf16_avx2,
    detail::sgemm_bias_s8_avx2,  detail::fft_stage_avx2,
    detail::axpy_avx2,           detail::welford5_add_avx2,
};

}  // namespace

const KernelTable& kernel_table(IsaTier tier) noexcept {
  if (static_cast<int>(tier) > static_cast<int>(detected_isa()))
    tier = detected_isa();
  switch (tier) {
    case IsaTier::kSse2: return kSse2Table;
    case IsaTier::kAvx2: return kAvx2Table;
    case IsaTier::kScalar: break;
  }
  return kScalarTable;
}

const KernelTable& kernel_table() noexcept {
  return kernel_table(active_isa());
}

}  // namespace beesim::dsp
