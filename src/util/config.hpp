#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace beesim::util {

/// Tiny key=value configuration parsed from command-line arguments, used by
/// every bench/example so figure parameters can be overridden without
/// recompiling, e.g.:
///
///   ./fig7_crossover clients_max=2000 parallel=35 seed=7
///
/// Lookups record which keys were consumed so unknown arguments can be
/// reported (a typo in a sweep parameter should not silently run the
/// default experiment).
class Config {
 public:
  Config() = default;
  Config(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were provided but never read by any get_* call.
  std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace beesim::util
