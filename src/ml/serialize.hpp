#pragma once

#include <iosfwd>

#include "ml/network.hpp"
#include "ml/svm.hpp"

namespace beesim::ml {

/// Text serialization of trained models, so a queen detector can be
/// trained once (on the cloud server, as in the paper) and deployed to
/// edge devices. The format is line-oriented ASCII with full round-trip
/// precision; versioned headers guard against format drift.

/// Writes/reads a trained SVM (hyperparameters, bias, support vectors).
void save_svm(const SvmClassifier& svm, std::ostream& out);
SvmClassifier load_svm(std::istream& in);

/// Writes/reads a fitted StandardScaler.
void save_scaler(const StandardScaler& scaler, std::ostream& out);
StandardScaler load_scaler(std::istream& in);

/// Writes/reads a queen-detection CNN (architecture descriptor +
/// flattened parameters). Only networks built by make_queen_cnn are
/// supported; the descriptor records (base_channels, input_side).
struct QueenCnnModel {
  Network network;
  std::size_t base_channels = 0;
  std::size_t input_side = 0;
};

void save_queen_cnn(const Network& network, std::size_t base_channels,
                    std::size_t input_side, std::ostream& out);
QueenCnnModel load_queen_cnn(std::istream& in);

}  // namespace beesim::ml
