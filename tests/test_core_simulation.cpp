#include <gtest/gtest.h>

#include <cmath>

#include "core/des_check.hpp"
#include "core/loss.hpp"
#include "core/network_sim.hpp"

namespace core = beesim::core;
using core::FillPolicy;
using core::LossConfig;
using core::ServiceModel;

// --------------------------------------------------------------- LossConfig

TEST(LossConfig, FactoriesEnableOneMechanismEach) {
  EXPECT_TRUE(LossConfig::only_saturation().slot_saturation);
  EXPECT_FALSE(LossConfig::only_saturation().transfer_stretch);
  EXPECT_TRUE(LossConfig::only_transfer_stretch().transfer_stretch);
  EXPECT_TRUE(LossConfig::only_dropout().client_dropout);
  const auto all = LossConfig::all();
  EXPECT_TRUE(all.slot_saturation && all.transfer_stretch &&
              all.client_dropout);
}

TEST(LossConfig, SaturationFactorCompounds) {
  const auto loss = LossConfig::only_saturation();
  // Threshold at max_parallel - 5 = 5; below it, no penalty.
  EXPECT_DOUBLE_EQ(loss.saturation_factor(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(loss.saturation_factor(6, 10), 1.1);
  EXPECT_NEAR(loss.saturation_factor(10, 10), std::pow(1.1, 5), 1e-12);
  // Disabled -> always 1.
  EXPECT_DOUBLE_EQ(LossConfig::none().saturation_factor(10, 10), 1.0);
}

TEST(LossConfig, DropoutDrawsNearTenPercent) {
  const auto loss = LossConfig::only_dropout();
  beesim::util::Rng rng(21);
  double total = 0.0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    const int lost = loss.draw_lost_clients(200, rng);
    EXPECT_GE(lost, 0);
    EXPECT_LE(lost, 200);
    total += lost;
  }
  EXPECT_NEAR(total / reps, 20.0, 0.5);  // 10 % of 200
}

TEST(LossConfig, DropoutDisabledDrawsZero) {
  beesim::util::Rng rng(22);
  EXPECT_EQ(LossConfig::none().draw_lost_clients(500, rng), 0);
}

// --------------------------------------------------- Fig 6 (ideal network)

TEST(Fig6, EdgeCostPerClientIsFlat322) {
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  for (int n : {10, 50, 100, 250, 400}) {
    const auto r = sim.simulate_ideal_cycle(n);
    EXPECT_NEAR(r.edge_per_client(), 322.0, 0.2) << "n=" << n;
  }
}

TEST(Fig6, ServerCostPerClientConvergesTo116) {
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  const int cap = sim.effective_server().capacity();
  const auto full = sim.simulate_ideal_cycle(cap);
  EXPECT_NEAR(full.cloud_per_client(), 116.0, 2.0);
  // Best total per beehive: 438 J (paper Section VI.B).
  EXPECT_NEAR(full.total_per_client(), 438.0, 2.5);
}

TEST(Fig6, ServerCostPerClientDecreasesTowardTheFloor) {
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  double prev = 1e18;
  for (int n : {10, 40, 80, 120, 180}) {
    const auto r = sim.simulate_ideal_cycle(n);
    EXPECT_LE(r.cloud_per_client(), prev + 1e-9) << "n=" << n;
    prev = r.cloud_per_client();
  }
}

TEST(Fig6, ServerCountGrowsWithFleet) {
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  EXPECT_EQ(sim.simulate_ideal_cycle(10).servers_used, 1);
  EXPECT_EQ(sim.simulate_ideal_cycle(180).servers_used, 1);
  EXPECT_EQ(sim.simulate_ideal_cycle(181).servers_used, 2);
  EXPECT_EQ(sim.simulate_ideal_cycle(400).servers_used, 3);
}

TEST(Fig6, SixteenPercentPremiumAtBestOperatingPoint) {
  // Paper: the 438 J best edge+cloud cost is 16 % above edge-only.
  core::LargeScaleSimulator sim(core::FleetParams::paper_default());
  const auto full =
      sim.simulate_ideal_cycle(sim.effective_server().capacity());
  const double edge_only = core::edge_cycle_energy(
      core::Placement::kEdgeOnly, ServiceModel::kCnn);
  const double premium =
      (full.total_per_client() - edge_only) / full.total_per_client();
  EXPECT_NEAR(premium, 0.16, 0.02);
}

// ------------------------------------------------------- Loss model A (Fig 8a)

TEST(Fig8a, SaturationRaisesServerFloorTo186) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::only_saturation();
  core::LargeScaleSimulator sim(fleet);
  const int cap = sim.effective_server().capacity();
  const auto full = sim.simulate_ideal_cycle(2 * cap);
  // Paper: converges towards 186 J (vs 116 J without loss).
  EXPECT_NEAR(full.cloud_per_client(), 186.0, 3.0);
}

TEST(Fig8a, BalancedPolicyAvoidsSaturationPenalty) {
  // Ablation: spreading clients dodges the compounding slot penalty.
  core::FleetParams packed = core::FleetParams::paper_default();
  packed.loss = LossConfig::only_saturation();
  core::FleetParams spread = packed;
  spread.policy = FillPolicy::kBalanced;
  const int n = 90;  // half a server: balanced puts 5/slot (no penalty)
  const auto packed_r =
      core::LargeScaleSimulator(packed).simulate_ideal_cycle(n);
  const auto spread_r =
      core::LargeScaleSimulator(spread).simulate_ideal_cycle(n);
  EXPECT_LT(spread_r.cloud_energy, packed_r.cloud_energy * 0.9);
}

// ------------------------------------------------------- Loss model B (Fig 8b)

TEST(Fig8b, TransferStretchNeedsMoreServers) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::only_transfer_stretch();
  core::LargeScaleSimulator sim(fleet);
  // Paper: for 350 clients, 4 servers with the duration penalty versus 2
  // in the no-loss case.
  EXPECT_EQ(sim.simulate_ideal_cycle(350).servers_used, 4);
  core::LargeScaleSimulator ideal(core::FleetParams::paper_default());
  EXPECT_EQ(ideal.simulate_ideal_cycle(350).servers_used, 2);
}

TEST(Fig8b, TransferStretchRaisesPerClientCost) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::only_transfer_stretch();
  core::LargeScaleSimulator sim(fleet);
  const auto full =
      sim.simulate_ideal_cycle(sim.effective_server().capacity());
  // Paper: minimum value around 212 J; our receive-scaling model lands a
  // little above (see DESIGN.md) — the floor must exceed the loss-A floor.
  EXPECT_GT(full.cloud_per_client(), 200.0);
  EXPECT_LT(full.cloud_per_client(), 240.0);
}

// ------------------------------------------------------- Loss model C (Fig 8c)

TEST(Fig8c, DropoutLowersMeasuredEnergyPerInitialClient) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::only_dropout();
  core::LargeScaleSimulator sim(fleet);
  beesim::util::Rng rng(33);
  const auto lossy = sim.simulate_cycle(200, rng);
  const auto ideal = sim.simulate_ideal_cycle(200);
  EXPECT_GT(lossy.lost_clients, 5);
  EXPECT_LT(lossy.edge_energy, ideal.edge_energy);
  EXPECT_LE(lossy.servers_used, ideal.servers_used);
}

TEST(Fig8c, SurvivorsNeverNegative) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::only_dropout();
  fleet.loss.dropout_mean_fraction = 0.9;  // extreme losses
  core::LargeScaleSimulator sim(fleet);
  beesim::util::Rng rng(34);
  for (int i = 0; i < 100; ++i) {
    const auto r = sim.simulate_cycle(10, rng);
    EXPECT_GE(r.surviving_clients(), 0);
    EXPECT_LE(r.lost_clients, 10);
  }
}

// ----------------------------------------------------------- Sweep mechanics

TEST(Sweep, DeterministicForSeed) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.loss = LossConfig::all();
  core::LargeScaleSimulator sim(fleet);
  const auto counts = core::client_range(50, 350, 100);
  const auto a = sim.sweep(counts, 7, 3);
  const auto b = sim.sweep(counts, 7, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].edge_energy, b[i].edge_energy);
    EXPECT_DOUBLE_EQ(a[i].cloud_energy, b[i].cloud_energy);
  }
}

TEST(Sweep, ClientRangeHelper) {
  EXPECT_EQ(core::client_range(10, 40, 10),
            (std::vector<int>{10, 20, 30, 40}));
  EXPECT_EQ(core::client_range(10, 45, 10),
            (std::vector<int>{10, 20, 30, 40}));
  EXPECT_THROW(core::client_range(10, 5, 1), std::invalid_argument);
}

TEST(Simulation, MismatchedPeriodsRejected) {
  core::FleetParams fleet = core::FleetParams::paper_default();
  fleet.client.period = 600.0;
  EXPECT_THROW(core::LargeScaleSimulator{fleet}, std::invalid_argument);
}

// --------------------------------- Analytic vs event-driven cross-validation

class DesCrossCheck
    : public ::testing::TestWithParam<std::tuple<ServiceModel, int>> {};

TEST_P(DesCrossCheck, AnalyticModelMatchesEventDrivenReplay) {
  const auto [service, clients] = GetParam();
  const auto des = core::des_replay_cycle(service, clients, 10);
  core::LargeScaleSimulator sim(
      core::FleetParams::paper_default(service, 10));
  const auto ana = sim.simulate_ideal_cycle(clients);
  EXPECT_NEAR(des.edge_energy, ana.edge_energy, 0.5);
  EXPECT_NEAR(des.cloud_energy, ana.cloud_energy, 0.5);
  EXPECT_EQ(des.slots_used, ana.active_slots);
}

INSTANTIATE_TEST_SUITE_P(
    ServicesAndSizes, DesCrossCheck,
    ::testing::Combine(::testing::Values(ServiceModel::kSvm,
                                         ServiceModel::kCnn),
                       ::testing::Values(1, 10, 25, 60)));

TEST(DesCrossCheck, RejectsOverCapacity) {
  EXPECT_THROW(core::des_replay_cycle(ServiceModel::kCnn, 100000, 10),
               std::invalid_argument);
}
