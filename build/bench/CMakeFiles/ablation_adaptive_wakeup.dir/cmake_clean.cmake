file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_wakeup.dir/ablation_adaptive_wakeup.cpp.o"
  "CMakeFiles/ablation_adaptive_wakeup.dir/ablation_adaptive_wakeup.cpp.o.d"
  "ablation_adaptive_wakeup"
  "ablation_adaptive_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
