file(REMOVE_RECURSE
  "CMakeFiles/beesim_hive.dir/hive/adaptive.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/adaptive.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/apiary.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/apiary.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/beehive.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/beehive.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/colony.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/colony.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/sensors.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/sensors.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/services.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/services.cpp.o.d"
  "CMakeFiles/beesim_hive.dir/hive/weather.cpp.o"
  "CMakeFiles/beesim_hive.dir/hive/weather.cpp.o.d"
  "libbeesim_hive.a"
  "libbeesim_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
