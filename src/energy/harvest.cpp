#include "energy/harvest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace beesim::energy {

HarvestNode::HarvestNode(SolarPanel panel, DcDcConverter converter,
                         Battery battery, IrradianceModel irradiance)
    : panel_(panel), converter_(converter), battery_(std::move(battery)),
      irradiance_(std::move(irradiance)) {}

HarvestNode::StepResult HarvestNode::step(util::Seconds t, util::Seconds dt,
                                          util::Watts load_power) {
  if (dt <= 0.0) throw std::invalid_argument("HarvestNode::step: dt <= 0");
  if (load_power < 0.0)
    throw std::invalid_argument("HarvestNode::step: negative load");

  StepResult r;
  // Irradiance sampled at the interval midpoint; dt is expected to be
  // minutes, far below the cloud-process timescale.
  const double irr = irradiance_.at(t + 0.5 * dt);
  const util::Watts panel_w = panel_.output(irr);
  // Panel feeds through the converter; conversion losses apply to whatever
  // the panel produces at its operating point.
  const double eta = converter_.efficiency(std::min(
      panel_w, converter_.params().max_output));
  const util::Watts usable_w =
      std::min(panel_w, converter_.params().max_output) * eta;
  r.solar_in = usable_w * dt;
  total_harvested_ += r.solar_in;

  const util::Joules requested = load_power * dt;
  const util::Joules level_before = battery_.level();

  if (r.solar_in >= requested) {
    // Solar covers the load; surplus charges the battery.
    r.delivered = requested;
    battery_.charge(r.solar_in - requested);
  } else {
    // Solar first, battery covers the gap (down to cutoff).
    const util::Joules gap = requested - r.solar_in;
    const util::Joules from_battery = battery_.discharge(gap);
    r.delivered = r.solar_in + from_battery;
  }
  r.stored = battery_.level() - level_before;
  r.shortfall = requested - r.delivered;
  r.brownout = r.shortfall > 1e-9;
  total_delivered_ += r.delivered;
  total_shortfall_ += r.shortfall;
  return r;
}

bool HarvestNode::can_serve(util::Seconds t, util::Watts load_power) {
  const double irr = irradiance_.at(t);
  const util::Watts panel_w = panel_.output(irr);
  if (panel_w >= load_power) return true;
  return !battery_.cut_off();
}

CurrentSensor::CurrentSensor() : CurrentSensor(Params{}) {}

CurrentSensor::CurrentSensor(const Params& params)
    : params_(params), rng_(params.seed) {
  if (params_.full_scale_amps <= 0.0 || params_.adc_bits < 1 ||
      params_.adc_bits > 24 || params_.bus_volts <= 0.0)
    throw std::invalid_argument("CurrentSensor: invalid params");
  // Bipolar range (-FS, +FS) across the ADC codes.
  lsb_ = 2.0 * params_.full_scale_amps /
         static_cast<double>(1 << params_.adc_bits);
}

double CurrentSensor::measure_current(double true_amps) {
  const double noisy = true_amps + rng_.normal(0.0, params_.noise_amps);
  const double clamped =
      std::clamp(noisy, -params_.full_scale_amps, params_.full_scale_amps);
  return std::round(clamped / lsb_) * lsb_;
}

util::Watts CurrentSensor::measure_power(util::Watts true_watts) {
  const double amps = true_watts / params_.bus_volts;
  return measure_current(amps) * params_.bus_volts;
}

}  // namespace beesim::energy
