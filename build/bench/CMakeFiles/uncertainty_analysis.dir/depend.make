# Empty dependencies file for uncertainty_analysis.
# This may be replaced when dependencies are built.
