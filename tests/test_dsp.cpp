#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/matrix.hpp"
#include "dsp/mel.hpp"
#include "dsp/spectrogram.hpp"
#include "dsp/stft.hpp"
#include "dsp/window.hpp"
#include "util/rng.hpp"

namespace dsp = beesim::dsp;

// ---------------------------------------------------------------------- FFT

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<dsp::Complex> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  dsp::fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalConcentratesAtDc) {
  std::vector<dsp::Complex> x(16, {1.0, 0.0});
  dsp::fft(x);
  EXPECT_NEAR(x[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-12);
}

TEST(Fft, PureToneLandsInCorrectBin) {
  const std::size_t n = 256;
  const std::size_t bin = 19;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  const auto spec = dsp::rfft(x);
  // Energy concentrated at `bin`, amplitude n/2.
  EXPECT_NEAR(std::abs(spec[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[bin - 3]), 0.0, 1e-9);
}

TEST(Fft, InverseRecoversSignal) {
  beesim::util::Rng rng(4);
  std::vector<dsp::Complex> x(128);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto y = x;
  dsp::fft(y);
  dsp::ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  beesim::util::Rng rng(5);
  std::vector<dsp::Complex> x(64);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.normal(), 0.0};
    time_energy += std::norm(v);
  }
  dsp::fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-9);
}

TEST(Fft, LinearityProperty) {
  beesim::util::Rng rng(6);
  const std::size_t n = 32;
  std::vector<dsp::Complex> a(n);
  std::vector<dsp::Complex> b(n);
  std::vector<dsp::Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.normal(), rng.normal()};
    b[i] = {rng.normal(), rng.normal()};
    sum[i] = a[i] + 2.0 * b[i];
  }
  dsp::fft(a);
  dsp::fft(b);
  dsp::fft(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<dsp::Complex> x(12);
  EXPECT_THROW(dsp::fft(x), std::invalid_argument);
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(dsp::is_power_of_two(1));
  EXPECT_TRUE(dsp::is_power_of_two(1024));
  EXPECT_FALSE(dsp::is_power_of_two(0));
  EXPECT_FALSE(dsp::is_power_of_two(12));
  EXPECT_EQ(dsp::next_power_of_two(1000), 1024u);
  EXPECT_EQ(dsp::next_power_of_two(1024), 1024u);
}

// ------------------------------------------------------------------ Windows

TEST(Window, HannEndpointsAndPeak) {
  const auto w = dsp::hann_window(8);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[4], 1.0, 1e-12);  // periodic form peaks at n/2
}

TEST(Window, HammingNeverReachesZero) {
  const auto w = dsp::hamming_window(16);
  for (double v : w) EXPECT_GT(v, 0.05);
}

TEST(Window, ApplyMultipliesElementwise) {
  std::vector<double> frame{1.0, 2.0, 3.0, 4.0};
  dsp::apply_window(frame, {0.5, 0.5, 0.5, 0.5});
  EXPECT_EQ(frame, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));
  std::vector<double> bad{1.0};
  EXPECT_THROW(dsp::apply_window(bad, {0.5, 0.5}), std::invalid_argument);
}

// ------------------------------------------------------------------- Matrix

TEST(Matrix, BoundsCheckedAccess) {
  dsp::Matrix m(2, 3, 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(Matrix, ResizeBilinearPreservesConstant) {
  dsp::Matrix m(5, 7, 3.0);
  const auto r = dsp::resize_bilinear(m, 11, 13);
  EXPECT_EQ(r.rows(), 11u);
  EXPECT_EQ(r.cols(), 13u);
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j)
      EXPECT_NEAR(r(i, j), 3.0, 1e-12);
}

TEST(Matrix, ResizeBilinearInterpolatesGradient) {
  dsp::Matrix m(2, 2);
  m(0, 0) = 0.0;
  m(0, 1) = 1.0;
  m(1, 0) = 0.0;
  m(1, 1) = 1.0;
  const auto r = dsp::resize_bilinear(m, 3, 3);
  EXPECT_NEAR(r(1, 1), 0.5, 1e-12);  // midpoint of the gradient
  EXPECT_NEAR(r(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(r(2, 2), 1.0, 1e-12);
}

TEST(Matrix, ResizePreservesValueRange) {
  beesim::util::Rng rng(7);
  dsp::Matrix m(16, 16);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j) m(i, j) = rng.uniform(-5.0, 5.0);
  const auto r = dsp::resize_bilinear(m, 40, 9);
  EXPECT_GE(r.min(), m.min() - 1e-12);
  EXPECT_LE(r.max(), m.max() + 1e-12);
}

// --------------------------------------------------------------------- STFT

TEST(Stft, FrameCountMatchesLibrosaFormula) {
  dsp::StftParams p;
  p.n_fft = 2048;
  p.hop = 512;
  // librosa with center=true: 1 + floor(len/hop).
  EXPECT_EQ(dsp::stft_frame_count(22050, p), 1 + 22050 / 512);
}

TEST(Stft, ToneConcentratesEnergyInMatchingBin) {
  const double sr = 22050.0;
  const double freq = 440.0;
  std::vector<double> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(i) /
                    sr);
  dsp::StftParams p;
  p.n_fft = 2048;
  p.hop = 512;
  const auto power = dsp::stft_power(x, p);
  // Find the peak bin of a middle frame.
  const std::size_t frame = power.cols() / 2;
  std::size_t peak = 0;
  for (std::size_t b = 1; b < power.rows(); ++b)
    if (power(b, frame) > power(peak, frame)) peak = b;
  const double expected_bin = freq * 2048.0 / sr;  // ~40.9
  EXPECT_NEAR(static_cast<double>(peak), expected_bin, 1.5);
}

TEST(Stft, SilenceGivesZeroPower) {
  std::vector<double> x(4096, 0.0);
  const auto power = dsp::stft_power(x);
  EXPECT_NEAR(power.max(), 0.0, 1e-18);
}

TEST(Stft, RejectsBadParams) {
  std::vector<double> x(4096, 0.0);
  dsp::StftParams p;
  p.n_fft = 1000;  // not a power of two
  EXPECT_THROW(dsp::stft_power(x, p), std::invalid_argument);
  p.n_fft = 2048;
  p.hop = 0;
  EXPECT_THROW(dsp::stft_power(x, p), std::invalid_argument);
}

// ---------------------------------------------------------------------- Mel

TEST(Mel, HzMelRoundTrip) {
  for (double hz : {100.0, 440.0, 1000.0, 8000.0})
    EXPECT_NEAR(dsp::mel_to_hz(dsp::hz_to_mel(hz)), hz, 1e-6);
}

TEST(Mel, MelScaleIsMonotone) {
  double prev = -1.0;
  for (double hz = 0.0; hz <= 11025.0; hz += 500.0) {
    const double mel = dsp::hz_to_mel(hz);
    EXPECT_GT(mel, prev);
    prev = mel;
  }
}

TEST(Mel, FilterbankShapeAndCoverage) {
  const auto fb = dsp::mel_filterbank(128, 2048, 22050.0);
  EXPECT_EQ(fb.rows(), 128u);
  EXPECT_EQ(fb.cols(), 1025u);
  // Every band has some weight; weights are non-negative.
  for (std::size_t m = 0; m < fb.rows(); ++m) {
    double sum = 0.0;
    for (std::size_t b = 0; b < fb.cols(); ++b) {
      EXPECT_GE(fb(m, b), 0.0);
      sum += fb(m, b);
    }
    EXPECT_GT(sum, 0.0) << "empty mel band " << m;
  }
}

TEST(Mel, FilterbankPeaksMoveUpward) {
  const auto fb = dsp::mel_filterbank(32, 2048, 22050.0);
  std::size_t prev_peak = 0;
  for (std::size_t m = 0; m < fb.rows(); ++m) {
    std::size_t peak = 0;
    for (std::size_t b = 1; b < fb.cols(); ++b)
      if (fb(m, b) > fb(m, peak)) peak = b;
    EXPECT_GE(peak, prev_peak);
    prev_peak = peak;
  }
}

TEST(Mel, ApplyFilterbankDimensions) {
  const auto fb = dsp::mel_filterbank(16, 256, 22050.0);
  dsp::Matrix power(129, 10, 1.0);
  const auto mel = dsp::apply_filterbank(fb, power);
  EXPECT_EQ(mel.rows(), 16u);
  EXPECT_EQ(mel.cols(), 10u);
  dsp::Matrix wrong(100, 10, 1.0);
  EXPECT_THROW(dsp::apply_filterbank(fb, wrong), std::invalid_argument);
}

TEST(Mel, PowerToDbRangeAndFloor) {
  dsp::Matrix power(2, 2);
  power(0, 0) = 1.0;
  power(0, 1) = 0.1;
  power(1, 0) = 1e-12;  // far below the floor
  power(1, 1) = 0.5;
  const auto db = dsp::power_to_db(power, 80.0);
  EXPECT_NEAR(db(0, 0), 0.0, 1e-9);        // reference = max
  EXPECT_NEAR(db(0, 1), -10.0, 1e-9);      // 10x down = -10 dB
  EXPECT_NEAR(db(1, 0), -80.0, 1e-9);      // clamped at top_db
  EXPECT_GE(db.min(), -80.0 - 1e-9);
}

// -------------------------------------------------------------- Spectrogram

TEST(MelSpectrogram, PaperDefaults) {
  dsp::MelSpectrogram mel;
  EXPECT_DOUBLE_EQ(mel.params().sample_rate, 22050.0);
  EXPECT_EQ(mel.params().n_fft, 2048u);
  EXPECT_EQ(mel.params().hop, 512u);
  EXPECT_EQ(mel.params().n_mels, 128u);
}

TEST(MelSpectrogram, ComputeShapes) {
  dsp::MelSpectrogram mel;
  std::vector<double> clip(22050, 0.1);  // 1 s
  const auto m = mel.compute(clip);
  EXPECT_EQ(m.rows(), 128u);
  EXPECT_EQ(m.cols(), 1u + 22050u / 512u);
}

TEST(MelSpectrogram, ImageIsNormalizedSquare) {
  dsp::MelSpectrogram mel;
  beesim::util::Rng rng(8);
  std::vector<double> clip(22050);
  for (auto& v : clip) v = rng.normal();
  const auto img = mel.compute_image(clip, 64);
  EXPECT_EQ(img.rows(), 64u);
  EXPECT_EQ(img.cols(), 64u);
  EXPECT_NEAR(img.min(), 0.0, 1e-12);
  EXPECT_NEAR(img.max(), 1.0, 1e-12);
}

TEST(MelSpectrogram, FeaturesHaveMelDimension) {
  dsp::MelSpectrogram mel;
  std::vector<double> clip(22050, 0.0);
  for (std::size_t i = 0; i < clip.size(); ++i)
    clip[i] = std::sin(2.0 * std::numbers::pi * 230.0 *
                       static_cast<double>(i) / 22050.0);
  const auto f = mel.compute_features(clip);
  EXPECT_EQ(f.size(), 128u);
  // Low bands (hive-hum region) should dominate for a 230 Hz tone.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < f.size(); ++i)
    if (f[i] > f[peak]) peak = i;
  EXPECT_LT(peak, 24u);
}
