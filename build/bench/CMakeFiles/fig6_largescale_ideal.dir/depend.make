# Empty dependencies file for fig6_largescale_ideal.
# This may be replaced when dependencies are built.
