# Empty compiler generated dependencies file for services_orchestration.
# This may be replaced when dependencies are built.
