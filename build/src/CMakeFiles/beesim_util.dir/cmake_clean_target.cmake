file(REMOVE_RECURSE
  "libbeesim_util.a"
)
