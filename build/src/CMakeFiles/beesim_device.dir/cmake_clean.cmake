file(REMOVE_RECURSE
  "CMakeFiles/beesim_device.dir/device/autonomy.cpp.o"
  "CMakeFiles/beesim_device.dir/device/autonomy.cpp.o.d"
  "CMakeFiles/beesim_device.dir/device/profiles.cpp.o"
  "CMakeFiles/beesim_device.dir/device/profiles.cpp.o.d"
  "CMakeFiles/beesim_device.dir/device/routine.cpp.o"
  "CMakeFiles/beesim_device.dir/device/routine.cpp.o.d"
  "CMakeFiles/beesim_device.dir/device/sim_device.cpp.o"
  "CMakeFiles/beesim_device.dir/device/sim_device.cpp.o.d"
  "CMakeFiles/beesim_device.dir/device/task.cpp.o"
  "CMakeFiles/beesim_device.dir/device/task.cpp.o.d"
  "libbeesim_device.a"
  "libbeesim_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
