#pragma once

#include "energy/battery.hpp"
#include "energy/solar.hpp"
#include "util/units.hpp"

namespace beesim::energy {

/// Solar panel -> DC/DC converter -> battery -> load chain; the "energy
/// node" of the deployed system (paper Section III). Stepped explicitly by
/// the simulation (typically from a PeriodicTask) with the load power the
/// devices request over each interval.
///
/// Reproduces the availability envelope of Fig 2a: at night the panel is
/// dark, and once the battery protection cuts off, the node browns out
/// until the next morning delivers charge again.
class HarvestNode {
 public:
  struct StepResult {
    util::Joules solar_in = 0.0;       // harvested at the panel output
    util::Joules stored = 0.0;         // net battery delta (may be < 0)
    util::Joules delivered = 0.0;      // energy actually given to the load
    util::Joules shortfall = 0.0;      // requested - delivered
    bool brownout = false;             // load was not fully served
  };

  HarvestNode(SolarPanel panel, DcDcConverter converter, Battery battery,
              IrradianceModel irradiance);

  /// Advances the node over [t, t + dt] with a constant requested load.
  /// Solar energy serves the load first; surplus charges the battery;
  /// deficit discharges it. Returns the energy bookkeeping for the step.
  StepResult step(util::Seconds t, util::Seconds dt,
                  util::Watts load_power);

  /// Whether the node can currently serve `load_power` (used by devices to
  /// decide if a wake-up is possible at all).
  bool can_serve(util::Seconds t, util::Watts load_power);

  const Battery& battery() const noexcept { return battery_; }
  Battery& battery() noexcept { return battery_; }
  IrradianceModel& irradiance() noexcept { return irradiance_; }
  const SolarPanel& panel() const noexcept { return panel_; }

  /// Cumulative counters since construction.
  util::Joules total_harvested() const noexcept { return total_harvested_; }
  util::Joules total_delivered() const noexcept { return total_delivered_; }
  util::Joules total_shortfall() const noexcept { return total_shortfall_; }

 private:
  SolarPanel panel_;
  DcDcConverter converter_;
  Battery battery_;
  IrradianceModel irradiance_;
  util::Joules total_harvested_ = 0.0;
  util::Joules total_delivered_ = 0.0;
  util::Joules total_shortfall_ = 0.0;
};

/// Grove-style +-5 A hall current sensor behind a 12-bit ADC, as wired on
/// the Raspberry Pi Zero monitoring node. Converts a true power draw into
/// what the monitoring pipeline would record (quantization + noise), so
/// "measured" figures in the benches carry realistic sensor artifacts.
class CurrentSensor {
 public:
  struct Params {
    double full_scale_amps = 5.0;
    int adc_bits = 12;
    double noise_amps = 0.01;  // rms input-referred noise
    double bus_volts = 5.0;
    std::uint64_t seed = 1234;
  };

  CurrentSensor();  // default Params
  explicit CurrentSensor(const Params& params);

  /// Measured current (amps) for a true current; clamped to full scale.
  double measure_current(double true_amps);

  /// Measured power for a true power draw at the configured bus voltage.
  util::Watts measure_power(util::Watts true_watts);

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  util::Rng rng_;
  double lsb_;
};

}  // namespace beesim::energy
