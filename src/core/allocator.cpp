#include "core/allocator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/catalog.hpp"

namespace beesim::core {

const char* to_string(FillPolicy policy) noexcept {
  switch (policy) {
    case FillPolicy::kFillFirst: return "fill-first";
    case FillPolicy::kBalanced: return "balanced";
    case FillPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

int Allocation::ServerLoad::total() const noexcept {
  return std::accumulate(slot_clients.begin(), slot_clients.end(), 0);
}

int Allocation::ServerLoad::active_slots() const noexcept {
  return static_cast<int>(
      std::count_if(slot_clients.begin(), slot_clients.end(),
                    [](int c) { return c > 0; }));
}

int Allocation::total_clients() const noexcept {
  int total = 0;
  for (const auto& s : servers) total += s.total();
  return total;
}

namespace {

Allocation fill_first(int clients, const ServerSpec& spec) {
  Allocation alloc;
  const int slots = spec.slots_per_cycle();
  int remaining = clients;
  while (remaining > 0) {
    Allocation::ServerLoad server;
    for (int s = 0; s < slots && remaining > 0; ++s) {
      const int take = std::min(remaining, spec.max_parallel);
      server.slot_clients.push_back(take);
      remaining -= take;
    }
    alloc.servers.push_back(std::move(server));
  }
  return alloc;
}

Allocation spread(int clients, const ServerSpec& spec, bool round_robin) {
  Allocation alloc;
  const int slots = spec.slots_per_cycle();
  const int capacity = spec.capacity();
  const int servers = (clients + capacity - 1) / capacity;
  alloc.servers.resize(static_cast<std::size_t>(servers));
  for (auto& s : alloc.servers)
    s.slot_clients.assign(static_cast<std::size_t>(slots), 0);

  if (round_robin) {
    // Deal one client at a time over every slot of every server.
    int placed = 0;
    while (placed < clients) {
      for (auto& server : alloc.servers) {
        for (auto& slot : server.slot_clients) {
          if (placed == clients) return alloc;
          if (slot < spec.max_parallel) {
            ++slot;
            ++placed;
          }
        }
      }
    }
    return alloc;
  }

  // Balanced: equal share per slot (within one client).
  const int total_slots = servers * slots;
  const int base = clients / total_slots;
  int extra = clients % total_slots;
  for (auto& server : alloc.servers) {
    for (auto& slot : server.slot_clients) {
      slot = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      if (slot > spec.max_parallel)
        throw std::logic_error("allocate: balanced overflow");
    }
  }
  return alloc;
}

}  // namespace

namespace {

void record_allocation(const Allocation& alloc, int clients) {
  if (!obs::enabled()) return;
  static auto& calls = obs::registry().counter(obs::metric::kAllocatorCalls);
  static auto& placed =
      obs::registry().counter(obs::metric::kAllocatorClientsPlaced);
  static auto& occupancy = obs::registry().histogram(
      obs::metric::kAllocatorSlotOccupancy, obs::slot_occupancy_bounds());
  calls.inc();
  placed.inc(static_cast<std::uint64_t>(clients));
  for (const auto& server : alloc.servers)
    for (int k : server.slot_clients)
      if (k > 0) occupancy.observe(static_cast<double>(k));
}

}  // namespace

Allocation allocate(int clients, const ServerSpec& spec, FillPolicy policy) {
  if (clients < 0) throw std::invalid_argument("allocate: negative clients");
  if (clients == 0) return {};
  Allocation alloc;
  switch (policy) {
    case FillPolicy::kFillFirst:
      alloc = fill_first(clients, spec);
      break;
    case FillPolicy::kBalanced:
      alloc = spread(clients, spec, false);
      break;
    case FillPolicy::kRoundRobin:
      alloc = spread(clients, spec, true);
      break;
    default:
      throw std::invalid_argument("allocate: unknown policy");
  }
  record_allocation(alloc, clients);
  return alloc;
}

}  // namespace beesim::core
