# Empty compiler generated dependencies file for fig7_crossover.
# This may be replaced when dependencies are built.
