# Empty dependencies file for loss_sensitivity.
# This may be replaced when dependencies are built.
