file(REMOVE_RECURSE
  "CMakeFiles/fleet_monitoring.dir/fleet_monitoring.cpp.o"
  "CMakeFiles/fleet_monitoring.dir/fleet_monitoring.cpp.o.d"
  "fleet_monitoring"
  "fleet_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
