#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::energy {

using util::Seconds;
using util::Watts;

/// Clear-sky irradiance over the day plus a slow stochastic cloud process.
/// Output is a fraction of peak irradiance in [0, 1]; the Fig 2a trace and
/// the harvest node both consume it. The cloud process is an Ornstein-
/// Uhlenbeck-like mean-reverting walk sampled on demand, so the same seed
/// always yields the same week of weather.
class IrradianceModel {
 public:
  struct Params {
    Seconds sunrise = 6.0 * util::kHour;   // local time of day
    Seconds sunset = 21.0 * util::kHour;   // local time of day
    double shape = 1.2;                    // steepness of the solar arc
    double peak_scale = 1.0;               // seasonal solar intensity
    double cloud_mean = 0.25;              // average attenuation fraction
    double cloud_volatility = 0.15;        // walk step scale per hour
    Seconds cloud_step = 15.0 * util::kMinute;  // cloud update granularity
    std::uint64_t seed = 42;

    /// Seasonal presets for the deployment latitude (~46 N): long bright
    /// summer days (the defaults), equinox, and short dim winter days —
    /// the regime where the related work studies panel orientation and
    /// sampling-rate trade-offs.
    static Params summer(std::uint64_t seed = 42);
    static Params equinox(std::uint64_t seed = 42);
    static Params winter(std::uint64_t seed = 42);
  };

  IrradianceModel();  // default Params
  explicit IrradianceModel(const Params& params);

  /// Irradiance fraction at absolute simulation time t (t = 0 is local
  /// midnight of day 0). Monotone queries are O(1) amortized; stepping
  /// backwards re-seeds the cloud walk, keeping results reproducible.
  double at(Seconds t);

  /// True when the sun is up at absolute time t.
  bool daylight(Seconds t) const;

  const Params& params() const noexcept { return params_; }

 private:
  double clear_sky(Seconds time_of_day) const;
  void advance_clouds(Seconds t);

  Params params_;
  util::Rng rng_;
  Seconds cloud_time_ = 0.0;
  double cloud_attenuation_;
};

/// Photovoltaic panel: converts irradiance fraction to electrical watts.
/// Matches the paper's 30 W monocrystalline panel; the low-light knee
/// models the "uncontrolled output voltage at dusk" the paper observed
/// (output collapses below ~4 % irradiance rather than tapering linearly).
class SolarPanel {
 public:
  struct Params {
    Watts rated = 30.0;
    double derating = 0.85;          // soiling, temperature, wiring
    double low_light_cutoff = 0.04;  // fraction below which output is 0
  };

  SolarPanel();  // default Params
  explicit SolarPanel(const Params& params);

  Watts output(double irradiance_fraction) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// DC/DC step-down converter (5 V / 3 A in the deployed system). The
/// efficiency curve is load-dependent: poor at trickle loads, flat ~0.92
/// in the useful range, with a hard current ceiling.
class DcDcConverter {
 public:
  struct Params {
    Watts max_output = 15.0;  // 5 V * 3 A
    double peak_efficiency = 0.92;
    /// Fraction of max load at which efficiency reaches ~90 % of peak.
    double knee_fraction = 0.08;
  };

  DcDcConverter();  // default Params
  explicit DcDcConverter(const Params& params);

  /// Efficiency at a given output power (0 when output exceeds the
  /// converter's ceiling — the converter shuts down on overcurrent).
  double efficiency(Watts output_power) const;

  /// Input power needed to supply `output_power`; infinity when the load
  /// exceeds the ceiling.
  Watts input_for(Watts output_power) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace beesim::energy
