// Multi-tenant serving load generator for the simulation-as-a-service
// layer (docs/SERVING.md). `tenants` closed-loop tenant threads each
// issue `requests_per_tenant` scenario-evaluation requests — a mix of
// fig6-style sweeps, fig7-style what-if placements and resilience
// queries — drawn from a small shared scenario pool with overlapping
// fleet-size windows, so different tenants keep asking about the same
// points. The run reports throughput, p50/p99 request latency, the
// cache hit ratio and the coalescing rate, then repeats the identical
// workload with the content-addressed cache disabled (and once more
// with the batched columnar compute path also disabled) and prints the
// speedups the cache and the columnar batching buy.
//
// Two self-checks guard the serving story and make this bench a tier-1
// smoke test (bench_smoke_serving):
//  - "admission ledger ok": submitted = admitted + rejected and every
//    admitted request completed (nothing silently dropped);
//  - "serving parity ok": a response served from the warmed cache is
//    bit-identical, field by field, to a direct
//    LargeScaleSimulator::sweep over the same grid.
// The bench exits non-zero if either fails.
//
// Usage: serving_load [tenants=8] [requests_per_tenant=25] [scenarios=3]
//                     [grid_points=6] [window=3] [cycles_per_point=400]
//                     [workers=4] [queue_capacity=1024] [max_batch=32]
//                     [columnar=1] [seed=7] [--metrics-out path]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/canonical.hpp"
#include "serve/service.hpp"
#include "util/stats.hpp"

using namespace beesim;

namespace {

struct Workload {
  int tenants = 8;
  int requests_per_tenant = 25;
  int scenarios = 3;
  int grid_points = 6;
  int window = 3;
  // Heavy enough per point (Monte-Carlo cycles) that compute, not queue
  // hand-off, dominates a cold request — the regime the cache exists for.
  int cycles_per_point = 400;
  std::uint64_t seed = 7;
};

struct PhaseResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;  // requests / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  serve::SimulationService::Ledger ledger;
  serve::PointCache::Stats cache;
};

// The shared scenario pool: paper-default fleets differing in server
// capacity and loss configuration, so distinct scenarios never share
// cache entries (their canonical hashes differ) while every tenant
// draws from the same pool.
core::FleetParams scenario_params(int scenario) {
  const int max_parallel = scenario % 2 == 0 ? 10 : 35;
  core::FleetParams params =
      core::FleetParams::paper_default(core::ServiceModel::kCnn, max_parallel);
  if (scenario % 3 == 1) params.loss = core::LossConfig::all();
  if (scenario % 3 == 2) params.loss = core::LossConfig::only_dropout();
  return params;
}

// Overlapping fleet-size window for one request: `window` consecutive
// grid sizes starting at a tenant/request-dependent offset.
std::vector<int> request_counts(const Workload& w, int tenant, int index) {
  std::vector<int> counts;
  const int start = (tenant + index) % (w.grid_points - w.window + 1);
  for (int i = 0; i < w.window; ++i)
    counts.push_back(100 * (start + i + 1));
  return counts;
}

serve::Request make_request(const Workload& w, int tenant, int index) {
  const int scenario = (tenant * 31 + index) % w.scenarios;
  const core::FleetParams params = scenario_params(scenario);
  std::vector<int> counts = request_counts(w, tenant, index);
  const auto id = static_cast<std::uint64_t>(tenant);

  switch (index % 5) {
    case 3: {  // fig7-style what-if placement
      serve::WhatIfRequest r;
      r.params = params;
      r.client_counts = std::move(counts);
      r.cycles_per_point = w.cycles_per_point;
      r.seed = w.seed;
      return serve::Request::make_what_if(std::move(r), id);
    }
    case 4: {  // resilience query under a seeded outage plan
      serve::ResilienceRequest r;
      r.params = params;
      r.plan = fault::FaultPlan::random_outages(
          w.seed + static_cast<std::uint64_t>(scenario), 20, 0.2, 3);
      r.client_counts = std::move(counts);
      r.cycles_per_point = w.cycles_per_point;
      r.seed = w.seed;
      return serve::Request::make_resilience(std::move(r), id);
    }
    default: {  // fig6-style sweep
      serve::SweepRequest r;
      r.params = params;
      r.client_counts = std::move(counts);
      r.cycles_per_point = w.cycles_per_point;
      r.seed = w.seed;
      return serve::Request::make_sweep(std::move(r), id);
    }
  }
}

PhaseResult run_phase(const Workload& w,
                      serve::SimulationService::Config config) {
  serve::SimulationService service(config);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(w.tenants));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int tenant = 0; tenant < w.tenants; ++tenant)
    threads.emplace_back([&w, &service, &latencies, tenant] {
      auto& lat = latencies[static_cast<std::size_t>(tenant)];
      lat.reserve(static_cast<std::size_t>(w.requests_per_tenant));
      for (int i = 0; i < w.requests_per_tenant; ++i) {
        const auto r0 = std::chrono::steady_clock::now();
        auto ticket = service.submit(make_request(w, tenant, i));
        if (!ticket.admitted()) continue;  // typed reject, counted below
        ticket.response.get();  // closed loop: wait before the next ask
        const auto r1 = std::chrono::steady_clock::now();
        lat.push_back(
            std::chrono::duration<double, std::milli>(r1 - r0).count());
      }
    });
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  service.shutdown();

  PhaseResult result;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  std::vector<double> all;
  for (auto& per_tenant : latencies)
    all.insert(all.end(), per_tenant.begin(), per_tenant.end());
  result.p50_ms = util::percentile(all, 0.50);
  result.p99_ms = util::percentile(all, 0.99);
  result.throughput = result.wall_seconds > 0.0
                          ? static_cast<double>(all.size()) /
                                result.wall_seconds
                          : 0.0;
  result.ledger = service.ledger();
  result.cache = service.cache_stats();
  return result;
}

// Bit-identity parity check: warm a service with the scenario-0 grid,
// re-request it (served from cache), and compare field by field against
// a direct LargeScaleSimulator::sweep. Exact FP equality — the serving
// layer promises the same bytes, not "close".
bool parity_ok(const Workload& w) {
  std::vector<int> grid;
  for (int i = 1; i <= w.grid_points; ++i) grid.push_back(100 * i);

  serve::SimulationService::Config config;
  config.workers = 0;
  serve::SimulationService service(config);
  serve::SweepRequest warm;
  warm.params = scenario_params(0);
  warm.client_counts = grid;
  warm.cycles_per_point = w.cycles_per_point;
  warm.seed = w.seed;
  auto cold_ticket = service.submit(serve::Request::make_sweep(warm));
  service.drain();
  cold_ticket.response.get();

  auto cached_ticket = service.submit(serve::Request::make_sweep(warm));
  service.drain();
  const serve::Response cached = cached_ticket.response.get();
  if (cached.points_from_cache != static_cast<int>(grid.size())) return false;

  const core::LargeScaleSimulator sim(scenario_params(0));
  const auto direct = sim.sweep(grid, w.seed, w.cycles_per_point, 1);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const core::SweepPoint& a = cached.sweep_points[i].point;
    const core::SweepPoint& b = direct[i];
    if (a.initial_clients != b.initial_clients || a.cycles != b.cycles ||
        a.servers_used != b.servers_used ||
        a.lost_clients.sum() != b.lost_clients.sum() ||
        a.active_slots.sum() != b.active_slots.sum() ||
        a.edge_energy.sum() != b.edge_energy.sum() ||
        a.cloud_energy.sum() != b.cloud_energy.sum() ||
        a.total_energy.sum() != b.total_energy.sum() ||
        a.total_energy.mean() != b.total_energy.mean() ||
        a.total_energy.min() != b.total_energy.min() ||
        a.total_energy.max() != b.total_energy.max())
      return false;
  }
  return true;
}

void print_phase(const char* label, const PhaseResult& r) {
  std::printf(
      "  %-12s %8.2f req/s   p50 %8.3f ms   p99 %8.3f ms   wall %6.2f s\n",
      label, r.throughput, r.p50_ms, r.p99_ms, r.wall_seconds);
  std::printf(
      "  %-12s admitted %llu  rejected %llu  completed %llu  "
      "cache hits %llu / misses %llu  entries %llu\n",
      "", static_cast<unsigned long long>(r.ledger.admitted),
      static_cast<unsigned long long>(r.ledger.rejected),
      static_cast<unsigned long long>(r.ledger.completed),
      static_cast<unsigned long long>(r.cache.hits),
      static_cast<unsigned long long>(r.cache.misses),
      static_cast<unsigned long long>(r.cache.entries));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  auto& cfg = args.config();

  Workload w;
  w.tenants = static_cast<int>(cfg.get_int("tenants", 8));
  w.requests_per_tenant =
      static_cast<int>(cfg.get_int("requests_per_tenant", 25));
  w.scenarios = static_cast<int>(cfg.get_int("scenarios", 3));
  w.grid_points = static_cast<int>(cfg.get_int("grid_points", 6));
  w.window = static_cast<int>(cfg.get_int("window", 3));
  w.cycles_per_point =
      static_cast<int>(cfg.get_int("cycles_per_point", 400));
  w.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  if (w.window > w.grid_points) w.window = w.grid_points;

  serve::SimulationService::Config config;
  config.workers = static_cast<unsigned>(cfg.get_int("workers", 4));
  config.queue_capacity =
      static_cast<std::size_t>(cfg.get_int("queue_capacity", 1024));
  config.max_batch = static_cast<std::size_t>(cfg.get_int("max_batch", 32));
  if (config.workers < 1) config.workers = 1;

  bench::banner("serving_load",
                "multi-tenant serving layer: throughput, latency, cache");
  std::printf(
      "\n  %d tenants x %d requests (sweep/what-if/resilience mix), "
      "%d scenarios,\n  %d-point windows over a %d-point grid, "
      "%d cycles/point, %u workers\n\n",
      w.tenants, w.requests_per_tenant, w.scenarios, w.window, w.grid_points,
      w.cycles_per_point, config.workers);

  config.columnar_batching = cfg.get_int("columnar", 1) != 0;

  config.cache_enabled = true;
  const PhaseResult with_cache = run_phase(w, config);
  print_phase("cache=on", with_cache);

  config.cache_enabled = false;
  const PhaseResult without_cache = run_phase(w, config);
  print_phase("cache=off", without_cache);

  // Cache-off again with per-request scalar sweeps: isolates what the
  // batched columnar compute path buys when every point is computed.
  config.columnar_batching = false;
  const PhaseResult scalar_compute = run_phase(w, config);
  print_phase("columnar=off", scalar_compute);

  const double speedup = with_cache.throughput > 0.0
                             ? with_cache.throughput /
                                   (without_cache.throughput > 0.0
                                        ? without_cache.throughput
                                        : 1.0)
                             : 0.0;
  const double columnar_speedup =
      scalar_compute.throughput > 0.0
          ? without_cache.throughput / scalar_compute.throughput
          : 0.0;
  std::printf("\n  cache_hit_ratio=%.3f\n", with_cache.cache.hit_ratio());
  std::printf("  cache_speedup=%.2fx (throughput, cache on vs off)\n",
              speedup);
  std::printf("  columnar_speedup=%.2fx (cache-off throughput, batched "
              "columnar vs per-request scalar)\n",
              columnar_speedup);

  bool ok = true;
  const auto check_ledger = [&ok](const char* label,
                                  const serve::SimulationService::Ledger& l) {
    if (l.balanced() && l.in_flight() == 0) return;
    std::printf("  ADMISSION LEDGER LEAK (%s): submitted %llu admitted %llu "
                "rejected %llu completed %llu\n",
                label, static_cast<unsigned long long>(l.submitted),
                static_cast<unsigned long long>(l.admitted),
                static_cast<unsigned long long>(l.rejected),
                static_cast<unsigned long long>(l.completed));
    ok = false;
  };
  check_ledger("cache=on", with_cache.ledger);
  check_ledger("cache=off", without_cache.ledger);
  check_ledger("columnar=off", scalar_compute.ledger);
  if (ok) std::printf("  admission ledger ok\n");

  if (parity_ok(w)) {
    std::printf("  serving parity ok (cached == direct sweep, bit-identical)\n");
  } else {
    std::printf("  SERVING PARITY FAILED: cached response differs from "
                "direct compute\n");
    ok = false;
  }

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
