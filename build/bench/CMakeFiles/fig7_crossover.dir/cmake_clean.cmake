file(REMOVE_RECURSE
  "CMakeFiles/fig7_crossover.dir/fig7_crossover.cpp.o"
  "CMakeFiles/fig7_crossover.dir/fig7_crossover.cpp.o.d"
  "fig7_crossover"
  "fig7_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
