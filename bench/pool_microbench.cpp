// Task-pool microbench: dispatch overhead of the persistent
// work-stealing executor (util::TaskPool) versus the spawn-per-call
// strategy parallel_for used before the pool existed. Three probes:
//
//   dispatch  — small-grain fork/join regions (`tasks` indices, near-empty
//               bodies) timed per region, pool vs a faithful local replica
//               of the old spawn-per-call implementation.
//   grain     — the same comparison with a body that does real arithmetic,
//               showing where spawn cost stops dominating.
//   steal     — sustained throughput of tiny tasks through the pool, with
//               the scheduler counters (tasks/steals/parks) read from
//               TaskPool::stats() before and after.
//
// Parseable output (consumed by scripts/check.sh --bench):
//   pool_dispatch_us=  spawn_dispatch_us=  dispatch_speedup=
//   steal_tasks_per_sec=  pool_steals=  pool_parks=
//
// With require=1 the bench exits non-zero unless the pool dispatches the
// small-grain region at least `min_speedup=` (default 5) times faster
// than spawn-per-call — the acceptance bound the executor must clear.
//
// Usage: pool_microbench [tasks=64] [reps=400] [threads=0] [require=0]
//                        [min_speedup=5] [--metrics-out path]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/parallel.hpp"
#include "util/task_pool.hpp"

namespace {

namespace u = beesim::util;
using Clock = std::chrono::steady_clock;

/// The pre-pool parallel_for, reproduced verbatim in miniature: burn one
/// thread per extra participant on every call, join them, rethrow. This
/// is the baseline the persistent executor replaces — per-call thread
/// creation is the overhead being measured, so the replica must pay it.
void spawn_per_call_for(std::size_t n,
                        const std::function<void(std::size_t)>& fn,
                        unsigned threads) {
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(n, 1)));
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> extra;
  extra.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) extra.emplace_back(worker);
  worker();
  for (auto& thread : extra) thread.join();
}

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Median-of-reps wall time of one fork/join region (microseconds).
template <typename Region>
double time_region_us(int reps, Region&& region) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    region();
    samples.push_back(to_us(Clock::now() - start));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  beesim::bench::Args args(argc, argv);
  const auto tasks =
      static_cast<std::size_t>(args.config().get_int("tasks", 64));
  const int reps = static_cast<int>(args.config().get_int("reps", 400));
  unsigned threads = beesim::bench::threads_arg(args);
  if (threads == 0) threads = std::max(2u, u::default_thread_count());
  const bool require = args.config().get_int("require", 0) != 0;
  const double min_speedup = args.config().get_double("min_speedup", 5.0);

  beesim::bench::banner("Pool microbench",
                        "persistent executor vs spawn-per-call dispatch");
  std::printf("  region: %zu tasks, %u participants, median of %d reps\n\n",
              tasks, threads, reps);

  // Warm both paths (pool worker start-up, allocator, branch caches).
  std::atomic<std::uint64_t> sink{0};
  auto tiny = [&sink](std::size_t i) {
    sink.fetch_add(i + 1, std::memory_order_relaxed);
  };
  u::parallel_for(tasks, tiny, threads);
  spawn_per_call_for(tasks, tiny, threads);

  // -- dispatch: near-empty bodies, overhead dominates ------------------
  const double pool_us = time_region_us(
      reps, [&] { u::parallel_for(tasks, tiny, threads); });
  const double spawn_us = time_region_us(
      reps, [&] { spawn_per_call_for(tasks, tiny, threads); });
  const double speedup = pool_us > 0.0 ? spawn_us / pool_us : 0.0;

  std::printf("  small-grain dispatch (%zu near-empty tasks):\n", tasks);
  std::printf("    pool        %10.2f us/region\n", pool_us);
  std::printf("    spawn/call  %10.2f us/region\n", spawn_us);
  std::printf("    speedup     %10.2fx\n\n", speedup);

  // -- grain: arithmetic bodies, compute starts to amortize spawn -------
  std::vector<double> cells(tasks * 64, 1.0);
  auto chunky = [&cells, tasks](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 64; ++k)
      acc += cells[i * 64 + k] * static_cast<double>(k + 1);
    cells[i * 64] = acc / static_cast<double>(tasks);
  };
  const double pool_grain_us = time_region_us(
      std::max(1, reps / 4), [&] { u::parallel_for(tasks, chunky, threads); });
  const double spawn_grain_us = time_region_us(
      std::max(1, reps / 4),
      [&] { spawn_per_call_for(tasks, chunky, threads); });
  std::printf("  medium-grain dispatch (64 mul-adds per task):\n");
  std::printf("    pool        %10.2f us/region\n", pool_grain_us);
  std::printf("    spawn/call  %10.2f us/region\n\n", spawn_grain_us);

  // -- steal: sustained tiny-task throughput + scheduler counters -------
  const auto before = u::TaskPool::instance().stats();
  const int steal_reps = std::max(1, reps / 2);
  const auto steal_start = Clock::now();
  for (int r = 0; r < steal_reps; ++r)
    u::parallel_for(tasks, tiny, threads);
  const double steal_seconds =
      std::chrono::duration<double>(Clock::now() - steal_start).count();
  const auto after = u::TaskPool::instance().stats();
  const double executed =
      static_cast<double>(steal_reps) * static_cast<double>(tasks);
  const double tasks_per_sec =
      steal_seconds > 0.0 ? executed / steal_seconds : 0.0;

  std::printf("  sustained throughput (%d regions back to back):\n",
              steal_reps);
  std::printf("    indices/sec %10.0f\n", tasks_per_sec);
  std::printf("    pool counters: tasks +%llu, steals +%llu, parks +%llu\n\n",
              static_cast<unsigned long long>(after.tasks - before.tasks),
              static_cast<unsigned long long>(after.steals - before.steals),
              static_cast<unsigned long long>(after.parks - before.parks));

  std::printf("  pool_dispatch_us=%.3f\n", pool_us);
  std::printf("  spawn_dispatch_us=%.3f\n", spawn_us);
  std::printf("  dispatch_speedup=%.2f\n", speedup);
  std::printf("  steal_tasks_per_sec=%.0f\n", tasks_per_sec);
  std::printf("  pool_steals=%llu\n",
              static_cast<unsigned long long>(after.steals - before.steals));
  std::printf("  pool_parks=%llu\n",
              static_cast<unsigned long long>(after.parks - before.parks));

  if (require && speedup < min_speedup) {
    std::fprintf(stderr,
                 "error: dispatch speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  (void)sink;
  return 0;
}
