file(REMOVE_RECURSE
  "CMakeFiles/test_audio.dir/test_audio.cpp.o"
  "CMakeFiles/test_audio.dir/test_audio.cpp.o.d"
  "test_audio"
  "test_audio.pdb"
  "test_audio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
