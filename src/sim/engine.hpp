#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace beesim::sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = beesim::util::Seconds;

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

/// Discrete-event simulation engine.
///
/// Events are callbacks ordered by (time, insertion sequence); the sequence
/// tie-break makes runs deterministic regardless of container internals,
/// which the property tests rely on (same seed => identical traces).
///
/// The engine is single-threaded by design: every experiment in the paper
/// is a closed-form or per-entity computation, and fleet-level parallelism
/// is applied *across* independent simulations (see bench harnesses), never
/// inside one engine, so no synchronization is needed on the hot path.
class Engine {
 public:
  using Callback = std::function<void(Engine&)>;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after a relative delay (must be >= 0).
  EventId schedule_after(SimTime delay, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled. Cancellation is O(1) (tombstone), cleanup is lazy.
  bool cancel(EventId id);

  /// Runs until the queue drains or `until` is reached, whichever is first.
  /// Advances now() to `until` even if the queue drains earlier, so energy
  /// integration over a fixed horizon is exact.
  void run_until(SimTime until);

  /// Runs until the queue is empty.
  void run();

  /// Pending (non-cancelled) event count.
  std::size_t pending() const noexcept;

  /// Total number of events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    // Ordered as a min-heap via std::greater.
    friend bool operator>(const Scheduled& a, const Scheduled& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  bool pop_next(Scheduled& out);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>,
                      std::greater<Scheduled>>
      queue_;
  // id -> callback; erased on execution/cancel. Tombstoned entries in the
  // priority queue are skipped when popped. O(1) schedule/cancel/pop.
  std::unordered_map<EventId, Callback> callbacks_;
};

/// Repeats a callback every `period` seconds starting at `start`. The
/// callback may stop the repetition by calling stop().
class PeriodicTask {
 public:
  using Callback = std::function<void(Engine&, PeriodicTask&)>;

  PeriodicTask(Engine& engine, SimTime start, SimTime period, Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool stopped() const noexcept { return stopped_; }
  SimTime period() const noexcept { return period_; }
  /// Adjusts the period for subsequent firings.
  void set_period(SimTime period);

 private:
  void arm(Engine& engine, SimTime at);

  Engine* engine_;
  SimTime period_;
  Callback fn_;
  EventId pending_ = 0;
  bool stopped_ = false;
};

}  // namespace beesim::sim
