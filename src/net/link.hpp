#pragma once

#include "net/payload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::net {

using util::Seconds;
using util::Watts;

/// Stochastic point-to-point link. Throughput per transfer is drawn from a
/// truncated normal; this is the mechanism behind the 3.5 s standard
/// deviation of routine lengths the paper attributes to "unstable network
/// throughput". Presets model the deployed 802.11n uplink from a rooftop
/// to the storage server.
class Link {
 public:
  struct Params {
    double throughput_mean_mbps = 8.0;
    double throughput_stddev_mbps = 2.0;
    double throughput_floor_mbps = 0.5;  // never slower than this
    Seconds setup_time = 1.2;            // association + TLS handshake
    Seconds latency = 0.02;              // per-message RTT contribution
  };

  Link();  // default Params
  explicit Link(const Params& params);

  /// Transfer duration for `bytes`, sampled with `rng`.
  Seconds transfer_time(Bytes bytes, util::Rng& rng) const;

  /// Deterministic duration at the mean throughput (for analytic models).
  Seconds expected_transfer_time(Bytes bytes) const;

  const Params& params() const noexcept { return params_; }

  /// Rooftop Wi-Fi as deployed (Cachan / Lyon campuses).
  static Link wifi_80211n();
  /// Degraded long-range link (apiary far from the gateway).
  static Link wifi_far();

 private:
  Params params_;
};

/// Radio energy model: transferring for T seconds at `tx_power` watts above
/// the device's baseline. Kept separate from Link because the same link is
/// shared by devices with different radios.
struct RadioProfile {
  Watts tx_extra_power = 0.45;  // extra draw while transmitting
  Watts rx_extra_power = 0.30;  // extra draw while receiving
};

}  // namespace beesim::net
