# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_features[1]_include.cmake")
include("/root/repo/build/tests/test_audio[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_hive[1]_include.cmake")
include("/root/repo/build/tests/test_core_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_core_allocator[1]_include.cmake")
include("/root/repo/build/tests/test_core_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_core_placement[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_orchestrator[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_apiary[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_uncertainty[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
