#pragma once

#include <cstdint>
#include <vector>

#include "core/canonical.hpp"
#include "core/network_sim.hpp"
#include "core/placement.hpp"
#include "core/resilience.hpp"

namespace beesim::serve {

/// The request taxonomy of the serving layer (docs/SERVING.md): the three
/// question shapes tenants ask the paper's Section VI model.
enum class RequestKind {
  /// Fig 6/8-style sweep: energy statistics per fleet size.
  kSweep,
  /// Fig 7-style what-if placement: edge-only vs edge+cloud verdict per
  /// fleet size. Shares its compute units (SweepPoints) with kSweep.
  kWhatIf,
  /// Resilience query: a fleet under a scheduled FaultPlan with
  /// graceful-degradation policies.
  kResilience,
};

/// Human-readable kind name ("sweep", "what_if", "resilience").
const char* to_string(RequestKind kind) noexcept;

/// Fig 6-style sweep request: Monte-Carlo energy statistics for each
/// requested fleet size under one fleet configuration.
struct SweepRequest {
  core::FleetParams params;
  std::vector<int> client_counts;
  int cycles_per_point = 1;
  std::uint64_t seed = 42;
};

/// Fig 7-style what-if placement request: for each fleet size, would
/// edge+cloud (simulated under `params`) beat running `service` edge-only?
/// The edge-only side is the analytic per-cycle constant of Tables I/II,
/// so the compute unit is exactly a kSweep point — what-if requests
/// coalesce and cache-share with sweeps over the same `params`.
struct WhatIfRequest {
  core::FleetParams params;
  core::ServiceModel service = core::ServiceModel::kCnn;
  std::vector<int> client_counts;
  int cycles_per_point = 1;
  std::uint64_t seed = 42;
};

/// Resilience query: the fleet of `params` under `plan`, degraded by
/// `policy` (edge fallback at the `service` cost table), per fleet size.
struct ResilienceRequest {
  core::FleetParams params;
  fault::FaultPlan plan;
  core::ResiliencePolicy policy;
  core::ServiceModel service = core::ServiceModel::kCnn;
  std::vector<int> client_counts;
  int cycles_per_point = 1;
  std::uint64_t seed = 42;
};

/// One tenant request: a kind discriminator plus the matching payload
/// (only the payload selected by `kind` is read). `tenant` is an opaque
/// caller label carried through to metrics/debugging — it is NOT part of
/// the cache key, which is how overlapping questions from different
/// tenants land on the same cached points.
struct Request {
  RequestKind kind = RequestKind::kSweep;
  std::uint64_t tenant = 0;
  SweepRequest sweep;
  WhatIfRequest what_if;
  ResilienceRequest resilience;

  static Request make_sweep(SweepRequest r, std::uint64_t tenant = 0);
  static Request make_what_if(WhatIfRequest r, std::uint64_t tenant = 0);
  static Request make_resilience(ResilienceRequest r,
                                 std::uint64_t tenant = 0);

  /// The request's fleet-size list (whichever payload is active).
  const std::vector<int>& client_counts() const noexcept;
  int cycles_per_point() const noexcept;
};

/// True when the request is well-formed: at least one fleet size, every
/// fleet size >= 1, cycles_per_point >= 1. Malformed requests are
/// rejected at admission with `Admission::kRejectedInvalid`.
bool valid(const Request& request) noexcept;

/// The request's *scenario group* hash: everything that defines its
/// compute, except the fleet sizes. Requests in the same group share
/// compute units — the cache key of one point is (group, client_count).
/// kSweep and kWhatIf over the same (params, cycles, seed) hash to the
/// same group on purpose (the what-if verdict is derived analytically
/// from the sweep point); kResilience folds the plan, policy and
/// fallback service into the hash. docs/SERVING.md documents the
/// derivation and the bit-identity guarantee it rests on.
core::Hash128 scenario_group(const Request& request);

/// One served sweep point with its provenance: `from_cache` is true when
/// the point was returned from the content-addressed cache rather than
/// computed by this request's batch. The point payload is bit-identical
/// either way (tested); only the provenance flag depends on timing.
struct SweepPointResult {
  core::SweepPoint point;
  bool from_cache = false;
};

/// One served what-if verdict (core::PlacementComparison semantics, but
/// over the Monte-Carlo sweep point rather than the ideal cycle).
struct WhatIfResult {
  core::PlacementComparison comparison;
  bool from_cache = false;
};

/// One served resilience point with provenance.
struct ResiliencePointResult {
  core::ResiliencePoint point;
  bool from_cache = false;
};

/// The serving layer's answer. Only the vector matching the request kind
/// is populated; entries are in the order of the request's client_counts.
struct Response {
  RequestKind kind = RequestKind::kSweep;
  std::vector<SweepPointResult> sweep_points;
  std::vector<WhatIfResult> what_if;
  std::vector<ResiliencePointResult> resilience_points;

  /// Cache provenance summary: of `points_total` served points, how many
  /// came straight from the cache.
  int points_total = 0;
  int points_from_cache = 0;
};

/// Typed admission outcome of `SimulationService::submit`. Every submit
/// returns exactly one of these — an over-capacity request is *rejected*,
/// never silently dropped (ledger-tested).
enum class Admission {
  /// Accepted; the ticket's future will be fulfilled.
  kAdmitted,
  /// The target worker's submission ring was full (instantaneous burst
  /// exceeded queue_capacity).
  kRejectedQueueFull,
  /// The service-wide in-flight bound (max_in_flight) was reached.
  kRejectedOverloaded,
  /// The request failed `valid()` — malformed, not a capacity problem.
  kRejectedInvalid,
  /// The service is shutting down and no longer accepts work.
  kRejectedShutdown,
};

/// Human-readable admission outcome ("admitted", "queue_full", ...).
const char* to_string(Admission admission) noexcept;

}  // namespace beesim::serve
