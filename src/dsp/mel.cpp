#include "dsp/mel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/simd_kernels.hpp"
#include "obs/catalog.hpp"

namespace beesim::dsp {

double hz_to_mel(double hz) noexcept {
  return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double mel_to_hz(double mel) noexcept {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

Matrix mel_filterbank(std::size_t n_mels, std::size_t n_fft,
                      double sample_rate, double fmin, double fmax) {
  if (n_mels == 0 || n_fft == 0 || sample_rate <= 0.0)
    throw std::invalid_argument("mel_filterbank: invalid params");
  if (fmax <= 0.0) fmax = sample_rate / 2.0;
  if (fmin < 0.0 || fmin >= fmax)
    throw std::invalid_argument("mel_filterbank: bad fmin/fmax");

  const std::size_t bins = n_fft / 2 + 1;
  // n_mels + 2 anchor frequencies, evenly spaced on the mel axis.
  std::vector<double> anchors_hz(n_mels + 2);
  const double mel_lo = hz_to_mel(fmin);
  const double mel_hi = hz_to_mel(fmax);
  for (std::size_t i = 0; i < anchors_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(n_mels + 1);
    anchors_hz[i] = mel_to_hz(mel);
  }

  Matrix fb(n_mels, bins);
  for (std::size_t m = 0; m < n_mels; ++m) {
    const double left = anchors_hz[m];
    const double center = anchors_hz[m + 1];
    const double right = anchors_hz[m + 2];
    for (std::size_t b = 0; b < bins; ++b) {
      const double freq = static_cast<double>(b) * sample_rate /
                          static_cast<double>(n_fft);
      double weight = 0.0;
      if (freq > left && freq < right) {
        weight = freq <= center ? (freq - left) / (center - left)
                                : (right - freq) / (right - center);
      }
      // Slaney-style area normalization keeps band energies comparable.
      fb(m, b) = weight * 2.0 / (right - left);
    }
  }
  return fb;
}

Matrix apply_filterbank(const Matrix& filterbank, const Matrix& power) {
  if (filterbank.cols() != power.rows())
    throw std::invalid_argument(
        "apply_filterbank: filterbank cols != spectrum bins");
  Matrix out(filterbank.rows(), power.cols());
  for (std::size_t m = 0; m < filterbank.rows(); ++m) {
    for (std::size_t b = 0; b < filterbank.cols(); ++b) {
      const double w = filterbank(m, b);
      if (w == 0.0) continue;
      for (std::size_t f = 0; f < power.cols(); ++f)
        out(m, f) += w * power(b, f);
    }
  }
  return out;
}

BandedFilterbank::BandedFilterbank(const Matrix& dense) : bins_(dense.cols()) {
  if (dense.empty())
    throw std::invalid_argument("BandedFilterbank: empty filterbank");
  first_.reserve(dense.rows());
  offset_.reserve(dense.rows() + 1);
  offset_.push_back(0);
  for (std::size_t m = 0; m < dense.rows(); ++m) {
    std::size_t first = bins_;
    std::size_t last = 0;
    for (std::size_t b = 0; b < bins_; ++b) {
      if (dense(m, b) != 0.0) {
        if (first == bins_) first = b;
        last = b;
      }
    }
    if (first == bins_) first = 0;  // all-zero band: empty range
    else {
      for (std::size_t b = first; b <= last; ++b)
        weights_.push_back(dense(m, b));
    }
    first_.push_back(first);
    offset_.push_back(weights_.size());
  }
  if (obs::enabled()) {
    static auto& nnz = obs::registry().gauge(obs::metric::kDspMelBandNnz);
    nnz.set(static_cast<double>(weights_.size()));
  }
}

Matrix BandedFilterbank::apply(const Matrix& power) const {
  if (bins_ != power.rows())
    throw std::invalid_argument(
        "BandedFilterbank::apply: filterbank bins != spectrum bins");
  Matrix out(bands(), power.cols());
  const std::size_t frames = power.cols();
  const KernelTable& kernels = kernel_table();
  for (std::size_t m = 0; m < bands(); ++m) {
    const std::size_t first = first_[m];
    const std::size_t count = offset_[m + 1] - offset_[m];
    const double* w = weights_.data() + offset_[m];
    double* out_row = out.data() + m * frames;
    for (std::size_t j = 0; j < count; ++j) {
      // Triangular bands have no interior zeros, but skip them anyway so
      // the accumulation order matches apply_filterbank bit for bit on
      // any input matrix. The row update dispatches to the SIMD axpy
      // kernel — same per-element mul/add order under every tier.
      if (w[j] == 0.0) continue;
      const double* in_row = power.data() + (first + j) * frames;
      kernels.axpy(w[j], in_row, out_row, frames);
    }
  }
  return out;
}

Matrix power_to_db(const Matrix& power, double top_db) {
  if (power.empty()) throw std::invalid_argument("power_to_db: empty");
  if (top_db <= 0.0) throw std::invalid_argument("power_to_db: top_db <= 0");
  constexpr double kAmin = 1e-10;
  const double ref = std::max(power.max(), kAmin);
  // The max element maps to 10*log10(ref/ref) = 0 dB exactly, so the dB
  // peak is always 0 and the clamp floor is -top_db; one fused pass
  // replaces the old compute-then-rescan-for-peak-then-clamp sequence
  // (equivalence-tested against it in test_dsp_kernels).
  Matrix out(power.rows(), power.cols());
  for (std::size_t r = 0; r < power.rows(); ++r)
    for (std::size_t c = 0; c < power.cols(); ++c) {
      const double db =
          10.0 * std::log10(std::max(power(r, c), kAmin) / ref);
      out(r, c) = std::max(db, -top_db);
    }
  return out;
}

}  // namespace beesim::dsp
