file(REMOVE_RECURSE
  "CMakeFiles/fig6_largescale_ideal.dir/fig6_largescale_ideal.cpp.o"
  "CMakeFiles/fig6_largescale_ideal.dir/fig6_largescale_ideal.cpp.o.d"
  "fig6_largescale_ideal"
  "fig6_largescale_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_largescale_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
