#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "dsp/simd_kernels.hpp"
#include "ml/gemm.hpp"
#include "ml/layers.hpp"
#include "ml/precision.hpp"
#include "ml/tensor.hpp"
#include "util/rng.hpp"

// Properties of the reduced-precision inference types: bf16
// round-to-nearest-even conversion, symmetric int8 quantization with
// bounded roundtrip error, and the layer forward paths that consume them.

namespace ml = beesim::ml;
namespace dsp = beesim::dsp;
using beesim::util::Rng;

namespace {

/// Restores the process-global inference precision on scope exit.
class PrecisionGuard {
 public:
  PrecisionGuard() : saved_(ml::inference_precision()) {}
  ~PrecisionGuard() { ml::set_inference_precision(saved_); }

 private:
  ml::Precision saved_;
};

float bf16_roundtrip(float f) {
  return dsp::bf16_bits_to_f32(dsp::f32_to_bf16_bits(f));
}

}  // namespace

TEST(Precision, Names) {
  EXPECT_EQ(ml::precision_from_name("f32"), ml::Precision::kF32);
  EXPECT_EQ(ml::precision_from_name("bf16"), ml::Precision::kBf16);
  EXPECT_EQ(ml::precision_from_name("int8"), ml::Precision::kInt8);
  EXPECT_THROW(ml::precision_from_name("fp16"), std::invalid_argument);
  EXPECT_STREQ(ml::precision_name(ml::Precision::kF32), "f32");
  EXPECT_STREQ(ml::precision_name(ml::Precision::kBf16), "bf16");
  EXPECT_STREQ(ml::precision_name(ml::Precision::kInt8), "int8");
}

TEST(Precision, GlobalDefaultsToF32) {
  EXPECT_EQ(ml::inference_precision(), ml::Precision::kF32);
  PrecisionGuard guard;
  ml::set_inference_precision(ml::Precision::kBf16);
  EXPECT_EQ(ml::inference_precision(), ml::Precision::kBf16);
}

TEST(Bf16, ExactlyRepresentableRoundTrips) {
  // Values with <= 8 significand bits are bf16-exact: conversion must be
  // the identity on them.
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 96.0f, -0.375f,
                  1.0f / 256.0f, 3.140625f}) {
    const float back = bf16_roundtrip(f);
    EXPECT_EQ(std::memcmp(&back, &f, sizeof f), 0) << f;
  }
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_roundtrip(inf), inf);
  EXPECT_EQ(bf16_roundtrip(-inf), -inf);
}

TEST(Bf16, RoundsToNearestEven) {
  // 1 + 2^-9 sits exactly between bf16 neighbours 1.0 and 1 + 2^-8;
  // nearest-even resolves it down to 1.0. 1 + 3*2^-9 resolves up.
  EXPECT_EQ(bf16_roundtrip(1.0f + 0x1p-9f), 1.0f);
  EXPECT_EQ(bf16_roundtrip(1.0f + 3 * 0x1p-9f), 1.0f + 0x1p-7f);
  // Relative error of rounding is bounded by 2^-8.
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float f = static_cast<float>(rng.normal(0.0, 100.0));
    EXPECT_LE(std::fabs(bf16_roundtrip(f) - f), std::fabs(f) * 0x1p-8f);
  }
}

TEST(Bf16, NaNStaysQuietNaN) {
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(bf16_roundtrip(qnan)));
  // A signalling payload entirely in the low 16 bits must not truncate
  // to an infinity bit pattern.
  std::uint32_t bits = 0x7f800001u;  // sNaN with low-bits-only payload
  float snan;
  std::memcpy(&snan, &bits, sizeof snan);
  EXPECT_TRUE(std::isnan(bf16_roundtrip(snan)));
}

TEST(Bf16, BufferConvertersMatchScalar) {
  Rng rng(11);
  std::vector<float> xs(257);
  for (auto& x : xs) x = static_cast<float>(rng.normal(0.0, 10.0));
  const auto packed = ml::to_bf16(xs.data(), xs.size());
  ASSERT_EQ(packed.size(), xs.size());
  const auto back = ml::from_bf16(packed.data(), packed.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(packed[i], dsp::f32_to_bf16_bits(xs[i]));
    EXPECT_EQ(back[i], bf16_roundtrip(xs[i]));
  }
}

TEST(Int8, RowQuantizationRoundTripBounded) {
  Rng rng(77);
  const std::size_t rows = 7, cols = 53;
  std::vector<float> data(rows * cols);
  for (auto& x : data) x = static_cast<float>(rng.normal(0.0, 4.0));
  const auto q = ml::quantize_rows_s8(data.data(), rows, cols);
  ASSERT_EQ(q.values.size(), data.size());
  ASSERT_EQ(q.scales.size(), rows);
  const auto back = ml::dequantize_rows_s8(q, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float maxabs = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      maxabs = std::max(maxabs, std::fabs(data[r * cols + c]));
    EXPECT_FLOAT_EQ(q.scales[r], maxabs / 127.0f);
    for (std::size_t c = 0; c < cols; ++c) {
      // Nearest rounding keeps each element within half a step.
      EXPECT_LE(std::fabs(back[r * cols + c] - data[r * cols + c]),
                q.scales[r] * 0.5f + 1e-7f)
          << "row " << r << " col " << c;
      EXPECT_GE(q.values[r * cols + c], -127);
      EXPECT_LE(q.values[r * cols + c], 127);
    }
  }
}

TEST(Int8, ZeroRowGetsZeroScale) {
  std::vector<float> data(8, 0.0f);
  const auto q = ml::quantize_rows_s8(data.data(), 2, 4);
  EXPECT_EQ(q.scales[0], 0.0f);
  EXPECT_EQ(q.scales[1], 0.0f);
  const auto back = ml::dequantize_rows_s8(q, 2, 4);
  for (float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(Int8, TensorQuantizationRoundTripBounded) {
  Rng rng(13);
  std::vector<float> data(301);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-6.0, 6.0));
  const auto q = ml::quantize_tensor_s8(data.data(), data.size());
  ASSERT_EQ(q.values.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float back = static_cast<float>(q.values[i]) * q.scale;
    EXPECT_LE(std::fabs(back - data[i]), q.scale * 0.5f + 1e-7f);
  }
}

TEST(Int8, QuantizedGemmTracksF32) {
  // End-to-end error of quantize -> int8 GEMM -> dequantize against the
  // f32 GEMM stays within the linear error budget: each product's error
  // is bounded by half a step per operand, k products accumulate.
  Rng rng(2468);
  const std::size_t m = 6, n = 40, k = 30;
  std::vector<float> a(m * k), b(k * n), bias(m);
  for (auto& x : a) x = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& x : b) x = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& x : bias) x = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<float> want(m * n), got(m * n);
  ml::sgemm_bias(m, n, k, a.data(), b.data(), bias.data(), want.data());
  const auto qa = ml::quantize_rows_s8(a.data(), m, k);
  const auto qb = ml::quantize_tensor_s8(b.data(), b.size());
  ml::sgemm_bias_s8(m, n, k, qa.values.data(), qa.scales.data(),
                    qb.values.data(), qb.scale, bias.data(), got.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    const float budget =
        static_cast<float>(k) *
            (qa.scales[i / n] * 0.5f * 127.0f * qb.scale +
             qb.scale * 0.5f * 127.0f * qa.scales[i / n]) +
        1e-4f;
    EXPECT_LE(std::fabs(got[i] - want[i]), budget) << i;
  }
  // And it should be a decent approximation in practice, not just within
  // the worst-case budget.
  double rms = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < m * n; ++i) {
    rms += (got[i] - want[i]) * (got[i] - want[i]);
    ref += want[i] * want[i];
  }
  EXPECT_LE(std::sqrt(rms / static_cast<double>(m * n)),
            0.05 * std::sqrt(ref / static_cast<double>(m * n)));
}

TEST(Precision, LinearForwardTracksF32) {
  PrecisionGuard guard;
  Rng rng(100);
  ml::Linear layer(24, 10, rng);
  ml::Tensor input({5, 24});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));

  ml::set_inference_precision(ml::Precision::kF32);
  const ml::Tensor f32_out = layer.forward(input, /*train=*/false);

  ml::set_inference_precision(ml::Precision::kBf16);
  const ml::Tensor bf16_out = layer.forward(input, false);
  ASSERT_TRUE(f32_out.same_shape(bf16_out));
  for (std::size_t i = 0; i < f32_out.size(); ++i)
    EXPECT_NEAR(bf16_out[i], f32_out[i],
                0.02f * std::max(1.0f, std::fabs(f32_out[i])));

  ml::set_inference_precision(ml::Precision::kInt8);
  const ml::Tensor s8_out = layer.forward(input, false);
  ASSERT_TRUE(f32_out.same_shape(s8_out));
  for (std::size_t i = 0; i < f32_out.size(); ++i)
    EXPECT_NEAR(s8_out[i], f32_out[i],
                0.05f * std::max(1.0f, std::fabs(f32_out[i])));
}

TEST(Precision, Conv2dForwardTracksF32) {
  PrecisionGuard guard;
  Rng rng(200);
  ml::Conv2d layer(2, 4, 3, rng);
  ml::Tensor input({2, 2, 9, 9});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));

  ml::set_inference_precision(ml::Precision::kF32);
  const ml::Tensor f32_out = layer.forward(input, false);

  ml::set_inference_precision(ml::Precision::kBf16);
  const ml::Tensor bf16_out = layer.forward(input, false);
  ASSERT_TRUE(f32_out.same_shape(bf16_out));
  for (std::size_t i = 0; i < f32_out.size(); ++i)
    EXPECT_NEAR(bf16_out[i], f32_out[i],
                0.02f * std::max(1.0f, std::fabs(f32_out[i])));

  ml::set_inference_precision(ml::Precision::kInt8);
  const ml::Tensor s8_out = layer.forward(input, false);
  ASSERT_TRUE(f32_out.same_shape(s8_out));
  for (std::size_t i = 0; i < f32_out.size(); ++i)
    EXPECT_NEAR(s8_out[i], f32_out[i],
                0.05f * std::max(1.0f, std::fabs(f32_out[i])));
}

TEST(Precision, TrainingIgnoresInferencePrecision) {
  // train=true must take the f32 path regardless of the global setting —
  // gradients are always f32.
  PrecisionGuard guard;
  Rng rng(300);
  ml::Linear layer(8, 4, rng);
  ml::Tensor input({3, 8});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.normal(0.0, 1.0));
  ml::set_inference_precision(ml::Precision::kF32);
  const ml::Tensor want = layer.forward(input, /*train=*/true);
  ml::set_inference_precision(ml::Precision::kInt8);
  const ml::Tensor got = layer.forward(input, /*train=*/true);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(want[i], got[i]);
}
