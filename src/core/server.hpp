#pragma once

#include "core/scenario.hpp"
#include "util/units.hpp"

namespace beesim::core {

/// The "server" of the paper's simulation model (Section VI.A): receives
/// data from clients and processes it. Clients are grouped into
/// synchronized *time slots*; within a slot up to `max_parallel` clients
/// transfer simultaneously, then the service runs once per slot batch.
/// The shorter the slot, the more slots fit in one wake-up cycle.
struct ServerSpec {
  util::Watts idle_power = 0.0;
  util::Seconds receive_time = 0.0;   // per slot, all clients in parallel
  util::Watts receive_power = 0.0;
  util::Seconds process_time = 0.0;   // model execution per slot
  util::Watts process_power = 0.0;
  int max_parallel = 10;
  util::Seconds cycle = 300.0;
  /// Loss model B: each synchronized client stretches the slot's transfer
  /// window by this much (0 = ideal).
  util::Seconds extra_transfer_per_client = 0.0;

  /// Duration of one slot serving `clients_in_slot` clients.
  util::Seconds slot_duration(int clients_in_slot) const;
  /// Slot duration used for capacity planning (worst case: a full slot).
  util::Seconds planning_slot_duration() const {
    return slot_duration(max_parallel);
  }
  /// How many time slots fit in one cycle.
  int slots_per_cycle() const;
  /// Maximum clients one server can absorb per cycle.
  int capacity() const { return slots_per_cycle() * max_parallel; }

  /// Active (non-idle) energy of one slot serving k clients, before any
  /// saturation penalty.
  util::Joules slot_active_energy(int clients_in_slot) const;

  /// The cloud server of Table II serving the given queen-detection
  /// model. Defaults reproduce Fig 6 (CNN service, 10 parallel).
  static ServerSpec cloud_server(ServiceModel service = ServiceModel::kCnn,
                                 int max_parallel = 10,
                                 util::Seconds cycle = 300.0);
};

}  // namespace beesim::core
