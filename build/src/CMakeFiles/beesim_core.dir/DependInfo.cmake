
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/CMakeFiles/beesim_core.dir/core/allocator.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/allocator.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/CMakeFiles/beesim_core.dir/core/client.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/client.cpp.o.d"
  "/root/repo/src/core/des_check.cpp" "src/CMakeFiles/beesim_core.dir/core/des_check.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/des_check.cpp.o.d"
  "/root/repo/src/core/loss.cpp" "src/CMakeFiles/beesim_core.dir/core/loss.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/loss.cpp.o.d"
  "/root/repo/src/core/network_sim.cpp" "src/CMakeFiles/beesim_core.dir/core/network_sim.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/network_sim.cpp.o.d"
  "/root/repo/src/core/orchestrator.cpp" "src/CMakeFiles/beesim_core.dir/core/orchestrator.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/orchestrator.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/beesim_core.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/beesim_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/beesim_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/CMakeFiles/beesim_core.dir/core/server.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/server.cpp.o.d"
  "/root/repo/src/core/uncertainty.cpp" "src/CMakeFiles/beesim_core.dir/core/uncertainty.cpp.o" "gcc" "src/CMakeFiles/beesim_core.dir/core/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/beesim_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
