#include "device/autonomy.hpp"

#include <stdexcept>

#include "device/calibration.hpp"
#include "device/routine.hpp"

namespace beesim::device {

util::Seconds battery_autonomy(const energy::Battery& battery,
                               util::Watts average_load) {
  if (average_load < 0.0)
    throw std::invalid_argument("battery_autonomy: negative load");
  if (average_load == 0.0)
    throw std::invalid_argument("battery_autonomy: zero load never drains");
  return battery.available() / average_load;
}

util::Seconds beehive_autonomy(const energy::Battery& battery,
                               util::Seconds wakeup_period) {
  const util::Watts pi_power =
      average_power_at_period(wakeup_period);
  return battery_autonomy(battery, pi_power + cal::kZeroMonitorPower);
}

util::Seconds period_for_autonomy(const energy::Battery& battery,
                                  util::Seconds target) {
  if (target <= 0.0)
    throw std::invalid_argument("period_for_autonomy: non-positive target");
  // Even infinite periods cannot beat the sleep + monitor floor.
  const util::Watts floor_power =
      cal::kEdgeSleepPower + cal::kZeroMonitorPower;
  if (battery.available() / floor_power < target) return 0.0;

  util::Seconds lo = cal::kRoutineDuration + 1.0;  // shortest legal period
  util::Seconds hi = 30.0 * util::kDay;
  if (beehive_autonomy(battery, lo) >= target) return lo;
  for (int i = 0; i < 64; ++i) {
    const util::Seconds mid = 0.5 * (lo + hi);
    if (beehive_autonomy(battery, mid) >= target)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace beesim::device
