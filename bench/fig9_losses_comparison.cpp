// Reproduces Fig 9: edge vs edge+cloud end-to-end energy per client with
// the loss models enabled, at 35 clients per time slot — the paper's
// "more realistic" comparison, including the 3-servers-for-1600-1750
// sizing example.
//
// Our reproduction differs from the paper in one documented way (see
// EXPERIMENTS.md): under the compounding slot-saturation penalty the
// paper's fill-first allocator loses every winning interval, and the
// transfer-stretch penalty at 35 clients per slot (+52.5 s per transfer)
// contradicts the paper's own 3-server sizing example. This bench
// therefore prints three variants: saturation-loss fill-first,
// saturation-loss balanced (which restores the winning intervals), and
// all-losses with dropout averaging.
//
// Usage: fig9_losses_comparison [lo=100] [hi=2000] [step=100] [seed=11]
//                               [parallel=35] [cycles_per_point=5]
//                               [threads=0] [checkpoint=path]
//                               [resume=0|1] [stop_after=N] [shard=I]
//                               [shards=S] [merge=a,b,...]
//
// The three variants are three independent campaigns; checkpoint/merge
// paths get the suffixes .v1/.v2/.v3 (sweep_runner.hpp).

#include <cstdio>

#include "bench_common.hpp"
#include "core/placement.hpp"
#include "sweep_runner.hpp"
#include "util/table.hpp"

using namespace beesim;
using core::FillPolicy;
using core::LossConfig;
using core::PlacementAdvisor;

namespace {

void panel(const char* title, const LossConfig& loss, FillPolicy policy,
           int parallel, int lo, int hi, int step, std::uint64_t seed,
           int cycles, unsigned threads, const bench::CheckpointArgs& ck) {
  core::FleetParams fleet =
      core::FleetParams::paper_default(core::ServiceModel::kCnn, parallel);
  fleet.loss = loss;
  fleet.policy = policy;
  core::LargeScaleSimulator sim(fleet);
  const double edge_only = core::edge_cycle_energy(
      core::Placement::kEdgeOnly, core::ServiceModel::kCnn);

  std::printf("\n--- %s (policy: %s) ---\n\n", title,
              core::to_string(policy));
  util::AsciiTable table({"Clients", "Servers", "Edge-only J/client",
                          "Edge+cloud J/client", "Winner"});
  const double sleep_cycle = fleet.client.sleep_cycle_energy();
  int winning_points = 0;
  const std::vector<int> counts = core::client_range(lo, hi, step);
  bench::SweepOutcome outcome;
  {
    obs::ScopedTimer sweep_timer("bench.fig9.sweep");
    outcome = bench::run_sweep(sim, counts, seed, cycles, threads, ck);
  }
  if (!bench::campaign_complete(title, outcome, counts.size())) return;
  const std::vector<core::SweepPoint>& results = outcome.points;
  for (const auto& r : results) {
    // The edge-only fleet suffers the same dropout: lost hives sleep
    // through the cycle, so its per-initial-client cost drops too.
    const double edge_only_eff =
        r.initial_clients > 0
            ? (r.mean_surviving() * edge_only +
               r.lost_clients.mean() * sleep_cycle) /
                  static_cast<double>(r.initial_clients)
            : edge_only;
    const bool wins = r.total_per_client() < edge_only_eff;
    winning_points += wins ? 1 : 0;
    table.add_row({std::to_string(r.initial_clients),
                   std::to_string(r.servers_used),
                   util::AsciiTable::num(edge_only_eff, 1),
                   util::AsciiTable::num(r.total_per_client(), 1),
                   wins ? "edge+cloud" : "edge"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  edge+cloud wins at %d of %zu sweep points\n",
              winning_points, results.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int lo = static_cast<int>(args.config().get_int("lo", 100));
  const int hi = static_cast<int>(args.config().get_int("hi", 2000));
  const int step = static_cast<int>(args.config().get_int("step", 100));
  const int parallel =
      static_cast<int>(args.config().get_int("parallel", 35));
  const auto seed =
      static_cast<std::uint64_t>(args.config().get_int("seed", 11));
  const int cycles =
      static_cast<int>(args.config().get_int("cycles_per_point", 5));
  const auto threads = bench::threads_arg(args);
  const bench::CheckpointArgs ck =
      bench::CheckpointArgs::parse(args.config());

  bench::banner("Fig 9", "scenario comparison with losses, 35 per slot");

  LossConfig saturation = LossConfig::only_saturation();
  panel("Fig 9 variant 1: saturation loss, paper's allocator", saturation,
        FillPolicy::kFillFirst, parallel, lo, hi, step, seed, 1, threads,
        ck.with_suffix(".v1"));
  panel("Fig 9 variant 2: saturation loss, balanced allocator", saturation,
        FillPolicy::kBalanced, parallel, lo, hi, step, seed, 1, threads,
        ck.with_suffix(".v2"));
  LossConfig all = LossConfig::all();
  all.transfer_stretch = false;  // see header note / EXPERIMENTS.md
  panel("Fig 9 variant 3: saturation + dropout (averaged cycles)", all,
        FillPolicy::kBalanced, parallel, lo, hi, step, seed, cycles,
        threads, ck.with_suffix(".v3"));

  // Paper's sizing example: 3 servers for 1600-1750 clients.
  core::FleetParams fleet =
      core::FleetParams::paper_default(core::ServiceModel::kCnn, parallel);
  fleet.loss = saturation;
  core::LargeScaleSimulator sim(fleet);
  std::printf("\nSizing example (paper: 3 servers for 1600-1750 clients):\n");
  for (int n : {1600, 1675, 1750})
    bench::check_line_int("  servers required", 3,
                          sim.simulate_ideal_cycle(n).servers_used);
  return 0;
}
