// Reproduces Table II: per-task time and energy of the edge device AND
// the cloud server over one wake-up cycle in the two *edge+cloud*
// queen-detection scenarios (inference runs on the server).
//
// Usage: table2_edgecloud_scenarios [cycle=300]

#include <cstdio>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

using namespace beesim;
using core::Placement;
using core::ServiceModel;

namespace {

void print_scenario(ServiceModel service, util::Seconds cycle,
                    double paper_edge, double paper_cloud) {
  const auto table =
      core::build_scenario_table(Placement::kEdgeCloud, service, cycle);
  std::printf("\nScenario: Edge+Cloud (%s), %.0f-second cycle\n",
              device::to_string(service), cycle);
  util::AsciiTable out({"Edge Task", "Energy of Edge (J)",
                        "Cloud Server Task", "Energy of Cloud Server (J)",
                        "Time (s)"});
  for (const auto& row : table.rows)
    out.add_row({row.edge_task, util::AsciiTable::num(row.edge_energy, 1),
                 row.cloud_task,
                 util::AsciiTable::num(row.cloud_energy, 1),
                 util::AsciiTable::num(row.time, 1)});
  out.add_rule();
  out.add_row({"Total", util::AsciiTable::num(table.edge_total(), 1), "",
               util::AsciiTable::num(table.cloud_total(), 1),
               util::AsciiTable::num(table.time_total(), 0)});
  std::printf("%s", out.render().c_str());
  if (cycle == 300.0) {
    bench::check_line("edge energy per cycle", paper_edge,
                      table.edge_total(), "J");
    bench::check_line("cloud energy per cycle", paper_cloud,
                      table.cloud_total(), "J");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const double cycle = args.config().get_double("cycle", 300.0);

  bench::banner("Table II",
                "edge+cloud scenarios: per-task time and energy");
  print_scenario(ServiceModel::kSvm, cycle, 322.0, 13744.3);
  print_scenario(ServiceModel::kCnn, cycle, 322.0, 13806.0);

  // Edge energy saved by offloading (paper: 12.1 % / 12.4 %).
  std::printf("\n");
  for (auto service : {ServiceModel::kSvm, ServiceModel::kCnn}) {
    const double edge =
        core::edge_cycle_energy(Placement::kEdgeOnly, service);
    const double offloaded =
        core::edge_cycle_energy(Placement::kEdgeCloud, service);
    const double paper = service == ServiceModel::kSvm ? 12.1 : 12.4;
    char label[64];
    std::snprintf(label, sizeof label, "edge energy saved by offload (%s)",
                  device::to_string(service));
    bench::check_line(label, paper, (edge - offloaded) / edge * 100.0, "%");
  }
  return 0;
}
