# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/table1_edge_scenarios")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/table2_edgecloud_scenarios")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2 "/root/repo/build/bench/fig2_weekly_trace" "days=1")
set_tests_properties(bench_smoke_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build/bench/fig3_wakeup_frequency" "hours_per_setting=1" "routines=30")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/fig5_model_energy_accuracy" "clips=24" "clip_seconds=0.6" "epochs=1" "sides=20,40")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6 "/root/repo/build/bench/fig6_largescale_ideal" "hi=100")
set_tests_properties(bench_smoke_fig6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7 "/root/repo/build/bench/fig7_crossover" "hi=900" "step=300")
set_tests_properties(bench_smoke_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/fig8_losses" "hi=100" "step=50" "cycles_per_point=2")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/fig9_losses_comparison" "hi=700" "step=300" "cycles_per_point=2")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_services "/root/repo/build/bench/services_orchestration" "fleets=20,630")
set_tests_properties(bench_smoke_services PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_uncertainty "/root/repo/build/bench/uncertainty_analysis" "samples=20" "hi=600" "step=250")
set_tests_properties(bench_smoke_uncertainty PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_server_power "/root/repo/build/bench/ablation_server_power" "hi=700")
set_tests_properties(bench_smoke_server_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;49;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_adaptive "/root/repo/build/bench/ablation_adaptive_wakeup" "days=1")
set_tests_properties(bench_smoke_adaptive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_seasons "/root/repo/build/bench/ablation_seasons" "days=1")
set_tests_properties(bench_smoke_seasons PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
