// DES core microbenchmark: events/sec of the pool engine vs the seed
// engine (a faithful replica of the pre-pool `priority_queue` +
// `unordered_map<EventId, std::function>` implementation, kept here so the
// speedup claim stays measurable on every machine), across four workload
// shapes:
//
//   schedule  — schedule N one-shot events at random times, drain.
//   cancel    — schedule N, cancel every other id, drain (tombstone path).
//   periodic  — K periodic wake-up tasks over a horizon, each firing
//               spawning a `chain`-step one-shot task sequence (the
//               paper's wake-up routine: sample → process → infer →
//               uplink). Each chain closure carries 32 bytes of sequence
//               state — the size the device layer's step closures
//               actually have (task list + completion callback), which
//               overflows std::function's 16-byte inline buffer (the
//               seed heap-allocated every step event) but fits EventFn's
//               48-byte buffer. On the pool engine this mode also
//               *asserts* zero steady-state allocations via the counting
//               global operator new below: after warm-up, the hot loop
//               must not touch the allocator at all (exit 1 otherwise).
//   multihive — H independent engines, each running the periodic shape,
//               fanned out over util::parallel_for worker threads.
//
// Usage: des_microbench [mode=all|schedule|cancel|periodic|multihive]
//                       [events=500000] [tasks=16] [chain=4] [hives=8]
//                       [threads=0] [reps=3] [json=path]
//
// `tasks` defaults to 16: since the farm refactor every engine hosts a
// single hive, so the honest periodic density is a handful of sensor/
// uplink routines per engine, not hundreds (fig2 executes ~1.9k
// events/hive/day). Crank it up to stress deep-heap behaviour.
//
// Each mode runs `reps` repetitions and reports the best run for both
// engines (min-time, the standard throughput-microbench estimator: the
// best rep is the one least perturbed by scheduler noise, and taking it
// for both sides keeps the comparison symmetric).
//
// `json=path` dumps the headline numbers for scripts/check.sh --bench
// (BENCH_des.json), so future PRs can track the perf trajectory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "seed_engine.hpp"
#include "sim/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

// ------------------------------------------------- counting allocator
// Every global allocation in this binary bumps g_alloc_count; the
// periodic mode snapshots it around the steady-state run to prove the
// engine hot path is allocation-free. Relaxed atomics: the multihive
// mode allocates from worker threads.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using beesim::util::Rng;
namespace sim = beesim::sim;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The baseline SeedEngine + SeedPeriodic live in seed_engine.{hpp,cpp}:
// a separate translation unit compiled like the seed's own engine.cpp,
// so the replica pays the same ABI-boundary and std::function costs the
// seed actually paid (see the header comment there).
using beesim::bench::SeedEngine;
using beesim::bench::SeedPeriodic;

// ------------------------------------------------------- wake-up chain
// Per-step sequence state carried inside each chained closure. 32 bytes:
// deliberately sized like the device layer's real step closures (task
// list + index + completion callback), which a std::function boxes on
// the heap but EventFn stores inline.
struct ChainState {
  std::uint64_t* fired;
  double step_delay;
  double energy_acc;
  std::uint32_t remaining;
  std::uint32_t task_index;
};
static_assert(sizeof(ChainState) == 32);

/// One step of the wake-up task sequence: account, then schedule the
/// next step. Identical code for both engines, so the measured delta is
/// pure engine overhead.
template <class E>
void run_chain(E& eng, ChainState st) {
  ++*st.fired;
  st.energy_acc += st.step_delay * static_cast<double>(st.task_index);
  if (st.remaining == 0) return;
  ChainState next = st;
  --next.remaining;
  ++next.task_index;
  eng.schedule_at(eng.now() + st.step_delay,
                  [next](E& e) { run_chain(e, next); });
}

template <class E>
void start_chain(E& eng, std::uint64_t* fired, int chain) {
  if (chain <= 0) return;
  ChainState st{fired, 0.01, 0.0, static_cast<std::uint32_t>(chain - 1),
                0};
  eng.schedule_at(eng.now() + st.step_delay,
                  [st](E& e) { run_chain(e, st); });
}

// ------------------------------------------------------- workloads

struct Result {
  double pool_eps = 0.0;   // events per second, pool engine
  double seed_eps = 0.0;   // events per second, seed replica
  double speedup() const {
    return seed_eps > 0.0 ? pool_eps / seed_eps : 0.0;
  }
};

/// N one-shot events at Rng-drawn times, then drain.
Result bench_schedule(std::uint64_t events) {
  Result r;
  {
    sim::Engine engine;
    std::uint64_t fired = 0;
    Rng rng(42);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i)
      engine.schedule_at(rng.uniform(0.0, 1e6),
                         [&fired](sim::Engine&) { ++fired; });
    engine.run();
    r.pool_eps = static_cast<double>(fired) / seconds_since(start);
  }
  {
    SeedEngine engine;
    std::uint64_t fired = 0;
    Rng rng(42);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i)
      engine.schedule_at(rng.uniform(0.0, 1e6),
                         [&fired](SeedEngine&) { ++fired; });
    engine.run();
    r.seed_eps = static_cast<double>(fired) / seconds_since(start);
  }
  return r;
}

/// N events, every other one cancelled before the drain: exercises the
/// tombstone + compaction path (and the hash-erase path on the seed).
Result bench_cancel(std::uint64_t events) {
  Result r;
  {
    sim::Engine engine;
    std::uint64_t fired = 0;
    Rng rng(43);
    std::vector<sim::EventId> ids;
    ids.reserve(events);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i)
      ids.push_back(engine.schedule_at(rng.uniform(0.0, 1e6),
                                       [&fired](sim::Engine&) { ++fired; }));
    for (std::uint64_t i = 0; i < events; i += 2) engine.cancel(ids[i]);
    engine.run();
    r.pool_eps = static_cast<double>(events) / seconds_since(start);
  }
  {
    SeedEngine engine;
    std::uint64_t fired = 0;
    Rng rng(43);
    std::vector<std::uint64_t> ids;
    ids.reserve(events);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < events; ++i)
      ids.push_back(engine.schedule_at(rng.uniform(0.0, 1e6),
                                       [&fired](SeedEngine&) { ++fired; }));
    for (std::uint64_t i = 0; i < events; i += 2) engine.cancel(ids[i]);
    engine.run();
    r.seed_eps = static_cast<double>(events) / seconds_since(start);
  }
  return r;
}

/// K periodic wake-up tasks (staggered starts, ~unit periods), each
/// firing spawning a `chain`-step task sequence, `events` executed
/// events in total — the per-hive wake-up shape. Returns the
/// steady-state allocation count for the pool engine via
/// `steady_allocs`.
Result bench_periodic(std::uint64_t events, int tasks, int chain,
                      std::uint64_t* steady_allocs) {
  // Each cycle executes 1 wake-up + `chain` sequence steps.
  const double horizon = static_cast<double>(events) /
                         static_cast<double>(tasks * (1 + chain));
  Result r;
  {
    sim::Engine engine;
    std::uint64_t fired = 0;
    Rng rng(44);
    std::vector<std::unique_ptr<sim::PeriodicTask>> fleet;
    fleet.reserve(static_cast<std::size_t>(tasks));
    for (int i = 0; i < tasks; ++i)
      fleet.push_back(std::make_unique<sim::PeriodicTask>(
          engine, rng.uniform(0.0, 1.0), rng.uniform(0.5, 1.5),
          [&fired, chain](sim::Engine& eng, sim::PeriodicTask&) {
            ++fired;
            start_chain(eng, &fired, chain);
          }));
    // Warm-up: grows the slab, the heap and every amortized buffer to
    // the workload's high-water mark.
    engine.run_until(horizon * 0.1);
    const std::uint64_t allocs_before = alloc_count();
    const std::uint64_t fired_before = fired;
    const auto start = std::chrono::steady_clock::now();
    engine.run_until(horizon);
    const double elapsed = seconds_since(start);
    if (steady_allocs != nullptr)
      *steady_allocs = alloc_count() - allocs_before;
    r.pool_eps = static_cast<double>(fired - fired_before) / elapsed;
  }
  {
    SeedEngine engine;
    std::uint64_t fired = 0;
    Rng rng(44);
    std::vector<std::unique_ptr<SeedPeriodic>> fleet;
    fleet.reserve(static_cast<std::size_t>(tasks));
    for (int i = 0; i < tasks; ++i) {
      fleet.push_back(std::make_unique<SeedPeriodic>(SeedPeriodic{
          &engine, 0.0, [&fired, chain](SeedEngine& eng) {
            ++fired;
            start_chain(eng, &fired, chain);
          }}));
      const double start_at = rng.uniform(0.0, 1.0);
      fleet.back()->period = rng.uniform(0.5, 1.5);
      fleet.back()->arm(start_at);
    }
    engine.run_until(horizon * 0.1);
    const std::uint64_t fired_before = fired;
    const auto start = std::chrono::steady_clock::now();
    engine.run_until(horizon);
    r.seed_eps =
        static_cast<double>(fired - fired_before) / seconds_since(start);
  }
  return r;
}

/// H independent engines, each running the periodic wake-up shape,
/// across util::parallel_for workers. Aggregate events/sec.
Result bench_multihive(std::uint64_t events, int tasks, int chain,
                       int hives, unsigned threads) {
  const double horizon = static_cast<double>(events) /
                         static_cast<double>(tasks * (1 + chain));
  Result r;
  {
    std::vector<std::uint64_t> fired(static_cast<std::size_t>(hives), 0);
    const auto start = std::chrono::steady_clock::now();
    beesim::util::parallel_for(
        static_cast<std::size_t>(hives),
        [&](std::size_t h) {
          sim::Engine engine;
          Rng rng = Rng::for_stream(44, h);
          std::vector<std::unique_ptr<sim::PeriodicTask>> fleet;
          fleet.reserve(static_cast<std::size_t>(tasks));
          std::uint64_t local = 0;
          for (int i = 0; i < tasks; ++i)
            fleet.push_back(std::make_unique<sim::PeriodicTask>(
                engine, rng.uniform(0.0, 1.0), rng.uniform(0.5, 1.5),
                [&local, chain](sim::Engine& eng, sim::PeriodicTask&) {
                  ++local;
                  start_chain(eng, &local, chain);
                }));
          engine.run_until(horizon);
          fired[h] = local;
        },
        threads);
    const double elapsed = seconds_since(start);
    std::uint64_t total = 0;
    for (const auto f : fired) total += f;
    r.pool_eps = static_cast<double>(total) / elapsed;
  }
  {
    std::vector<std::uint64_t> fired(static_cast<std::size_t>(hives), 0);
    const auto start = std::chrono::steady_clock::now();
    beesim::util::parallel_for(
        static_cast<std::size_t>(hives),
        [&](std::size_t h) {
          SeedEngine engine;
          Rng rng = Rng::for_stream(44, h);
          std::vector<std::unique_ptr<SeedPeriodic>> fleet;
          fleet.reserve(static_cast<std::size_t>(tasks));
          std::uint64_t local = 0;
          for (int i = 0; i < tasks; ++i) {
            fleet.push_back(std::make_unique<SeedPeriodic>(SeedPeriodic{
                &engine, 0.0, [&local, chain](SeedEngine& eng) {
                  ++local;
                  start_chain(eng, &local, chain);
                }}));
            const double start_at = rng.uniform(0.0, 1.0);
            fleet.back()->period = rng.uniform(0.5, 1.5);
            fleet.back()->arm(start_at);
          }
          engine.run_until(horizon);
          fired[h] = local;
        },
        threads);
    const double elapsed = seconds_since(start);
    std::uint64_t total = 0;
    for (const auto f : fired) total += f;
    r.seed_eps = static_cast<double>(total) / elapsed;
  }
  return r;
}

/// Runs `fn` `reps` times and keeps each engine's best rep (max
/// events/sec). Every field other than the throughputs is taken from the
/// last rep — for periodic mode the caller accumulates steady-state
/// allocation counts across reps itself.
template <class F>
Result best_of(int reps, F&& fn) {
  Result best;
  for (int i = 0; i < reps; ++i) {
    const Result r = fn();
    if (r.pool_eps > best.pool_eps) best.pool_eps = r.pool_eps;
    if (r.seed_eps > best.seed_eps) best.seed_eps = r.seed_eps;
  }
  return best;
}

void print_result(const char* mode, const Result& r) {
  std::printf("  %-10s pool %8.2fM events/s   seed %8.2fM events/s   "
              "speedup %.2fx\n",
              mode, r.pool_eps / 1e6, r.seed_eps / 1e6, r.speedup());
}

}  // namespace

int main(int argc, char** argv) {
  beesim::bench::Args args(argc, argv);
  const std::string mode = args.config().get_string("mode", "all");
  const auto events =
      static_cast<std::uint64_t>(args.config().get_int("events", 500000));
  const int tasks = static_cast<int>(args.config().get_int("tasks", 16));
  const int chain = static_cast<int>(args.config().get_int("chain", 4));
  const int hives = static_cast<int>(args.config().get_int("hives", 8));
  const auto threads = beesim::bench::threads_arg(args);
  const int reps = static_cast<int>(args.config().get_int("reps", 3));
  const std::string json_path = args.config().get_string("json", "");

  beesim::bench::banner("DES microbench",
                        "event-pool engine vs seed engine, events/sec");
  std::printf(
      "\nWorkload: %llu events, %d periodic tasks, %d-step wake-up "
      "chains, %d hives\n\n",
      static_cast<unsigned long long>(events), tasks, chain, hives);

  const bool all = mode == "all";
  Result schedule_r, cancel_r, periodic_r, multihive_r;
  std::uint64_t steady_allocs = 0;
  bool ran_periodic = false;

  if (all || mode == "schedule") {
    schedule_r = best_of(reps, [&] { return bench_schedule(events); });
    print_result("schedule", schedule_r);
  }
  if (all || mode == "cancel") {
    cancel_r = best_of(reps, [&] { return bench_cancel(events); });
    print_result("cancel", cancel_r);
  }
  if (all || mode == "periodic") {
    // steady_allocs accumulates over reps: any rep that allocates in the
    // hot loop fails the zero-allocation gate.
    periodic_r = best_of(reps, [&] {
      std::uint64_t rep_allocs = 0;
      const Result r = bench_periodic(events, tasks, chain, &rep_allocs);
      steady_allocs += rep_allocs;
      return r;
    });
    ran_periodic = true;
    print_result("periodic", periodic_r);
  }
  if (all || mode == "multihive") {
    multihive_r = best_of(reps, [&] {
      return bench_multihive(events / 4, tasks, chain, hives, threads);
    });
    print_result("multihive", multihive_r);
  }

  if (ran_periodic) {
    std::printf("\n  periodic steady-state allocations: %llu %s\n",
                static_cast<unsigned long long>(steady_allocs),
                steady_allocs == 0 ? "(zero-allocation hot path ok)"
                                   : "(REGRESSION: hot path allocates!)");
    if (steady_allocs != 0) {
      std::fprintf(stderr,
                   "error: pool engine allocated %llu time(s) in the "
                   "steady-state periodic loop\n",
                   static_cast<unsigned long long>(steady_allocs));
      return 1;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"schedule_pool_events_per_sec\": " << schedule_r.pool_eps
        << ",\n"
        << "  \"schedule_seed_events_per_sec\": " << schedule_r.seed_eps
        << ",\n"
        << "  \"cancel_pool_events_per_sec\": " << cancel_r.pool_eps
        << ",\n"
        << "  \"cancel_seed_events_per_sec\": " << cancel_r.seed_eps
        << ",\n"
        << "  \"periodic_pool_events_per_sec\": " << periodic_r.pool_eps
        << ",\n"
        << "  \"periodic_seed_events_per_sec\": " << periodic_r.seed_eps
        << ",\n"
        << "  \"periodic_speedup_vs_seed\": " << periodic_r.speedup()
        << ",\n"
        << "  \"periodic_steady_state_allocs\": " << steady_allocs << ",\n"
        << "  \"multihive_pool_events_per_sec\": " << multihive_r.pool_eps
        << ",\n"
        << "  \"multihive_seed_events_per_sec\": " << multihive_r.seed_eps
        << "\n}\n";
    std::printf("\nHeadline numbers written to %s\n", json_path.c_str());
  }
  return 0;
}
