#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/catalog.hpp"

namespace beesim::sim {

// Instrument references are resolved once (function-local statics) so the
// registry lock is never taken after the first flush. The engine keeps
// its own plain counters on the hot path and flushes deltas here at the
// end of each run()/run_until() call (and on destruction): with
// observability disabled the event loop performs zero instrument calls,
// and with it enabled the flushed totals match the seed engine's
// per-event increments exactly.
namespace {

struct EngineMetrics {
  obs::Counter& scheduled =
      obs::registry().counter(obs::metric::kEngineEventsScheduled);
  obs::Counter& executed =
      obs::registry().counter(obs::metric::kEngineEventsExecuted);
  obs::Counter& cancelled =
      obs::registry().counter(obs::metric::kEngineEventsCancelled);
  obs::Gauge& max_queue_depth =
      obs::registry().gauge(obs::metric::kEngineMaxQueueDepth);
  obs::Gauge& pool_slots =
      obs::registry().gauge(obs::metric::kEnginePoolSlots);
  obs::Counter& pool_reuses =
      obs::registry().counter(obs::metric::kEnginePoolReuses);
  obs::Counter& pool_spills =
      obs::registry().counter(obs::metric::kEnginePoolSpills);
  obs::Counter& pool_rearms =
      obs::registry().counter(obs::metric::kEnginePoolRearms);
  obs::Counter& pool_compactions =
      obs::registry().counter(obs::metric::kEnginePoolCompactions);

  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

}  // namespace

Engine::~Engine() { flush_metrics(); }

void Engine::flush_metrics() noexcept {
  if (!obs::enabled()) return;
  auto& m = EngineMetrics::get();
  m.scheduled.inc(scheduled_total_ - flushed_scheduled_);
  m.executed.inc(executed_ - flushed_executed_);
  m.cancelled.inc(cancelled_total_ - flushed_cancelled_);
  m.pool_reuses.inc(reuses_ - flushed_reuses_);
  m.pool_spills.inc(spills_ - flushed_spills_);
  m.pool_rearms.inc(rearms_ - flushed_rearms_);
  m.pool_compactions.inc(compactions_ - flushed_compactions_);
  flushed_scheduled_ = scheduled_total_;
  flushed_executed_ = executed_;
  flushed_cancelled_ = cancelled_total_;
  flushed_reuses_ = reuses_;
  flushed_spills_ = spills_;
  flushed_rearms_ = rearms_;
  flushed_compactions_ = compactions_;
  m.max_queue_depth.update_max(static_cast<double>(max_live_));
  m.pool_slots.update_max(static_cast<double>(slot_count_));
}

void Engine::release_slot(std::uint32_t s) noexcept {
  Slot& sl = slot(s);
  sl.next_free = free_head_;
  free_head_ = s;
  ++free_count_;
}

bool Engine::entry_live(const HeapEntry& e) const noexcept {
  const Slot& s = slot(e.slot);
  return s.armed && s.gen == e.gen;
}

// 4-ary implicit heap: children of i are 4i+1..4i+4. Same O(log n) as a
// binary heap but half the sift depth on pops, which dominate the run
// loop; the four children of a node sit in 96 contiguous bytes.

void Engine::heap_push(const HeapEntry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Engine::heap_pop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
}

// queue_push (front-slot fast path) and arm_slot are defined inline in
// the header so the schedule templates fold them into call sites.

void Engine::queue_pop_top() noexcept {
  if (front_valid_)
    front_valid_ = false;
  else
    heap_pop();
}

EventId Engine::schedule_at(SimTime at, Callback fn) {
  if (at < now_)
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("Engine::schedule_at: null callback");
  Slot* sp = nullptr;
  const std::uint32_t idx = acquire_slot(&sp);
  sp->fn = std::move(fn);
  return arm_slot(at, idx, *sp);
}

EventId Engine::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0)
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  if (id == 0) return false;
  const std::uint32_t idx = slot_of(id);
  if (idx >= slot_count_) return false;
  Slot& s = slot(idx);
  if (s.gen != gen_of(id) || !s.armed) return false;
  s.fn.reset();
  s.armed = false;
  ++s.gen;  // tombstones the heap entry and invalidates the id in O(1)
  release_slot(idx);
  --live_;
  ++tombstones_;
  ++cancelled_total_;
  compact_if_stale();
  return true;
}

void Engine::compact_if_stale() {
  // Sweep when dead entries dominate: a cancel-heavy run keeps the heap
  // proportional to the live event count instead of the cancel count.
  if (tombstones_ < 64 || tombstones_ * 2 < heap_.size()) return;
  std::erase_if(heap_,
                [this](const HeapEntry& e) { return !entry_live(e); });
  for (std::size_t i = heap_.size() / 4 + 1; i-- > 0;)
    if (i < heap_.size()) heap_sift_down(i);
  tombstones_ = 0;
  ++compactions_;
}

EventId Engine::reschedule_current(SimTime at) {
  if (exec_slot_ == kNilSlot)
    throw std::logic_error(
        "Engine::reschedule_current: no event is executing");
  if (at < now_)
    throw std::invalid_argument(
        "Engine::reschedule_current: time in the past");
  rearm_requested_ = true;
  rearm_at_ = at;
  return make_id(exec_slot_, exec_gen_);
}

void Engine::execute_event(Slot& s, const HeapEntry& e) {
  // The callback runs in place inside the pool: chunk addresses never
  // move, so even a callback that grows the slab cannot invalidate its
  // own storage. The slot stays off the free list while the callback
  // runs — reschedule_current() may re-arm it, and a cancel() of the
  // executing id correctly fails (armed is already false).
  s.armed = false;
  --live_;
  now_ = e.at;
  ++executed_;
  exec_slot_ = e.slot;
  exec_gen_ = e.gen;
  rearm_requested_ = false;
  try {
    s.fn(*this);
  } catch (...) {
    exec_slot_ = kNilSlot;
    s.fn.reset();
    ++s.gen;
    release_slot(e.slot);
    throw;
  }
  exec_slot_ = kNilSlot;
  if (rearm_requested_) {
    // Periodic fast path: callback, slot, and id all stay put; the only
    // work is one queue push. live_ returns to its pre-pop value, so the
    // max_live_ watermark cannot move here.
    s.armed = true;
    queue_push({rearm_at_, next_seq_++, e.slot, e.gen});
    ++live_;
    ++rearms_;
    ++scheduled_total_;
  } else {
    s.fn.reset();
    ++s.gen;
    release_slot(e.slot);
  }
}

void Engine::run_until(SimTime until) {
  if (until < now_)
    throw std::invalid_argument("Engine::run_until: horizon in the past");
  while (front_valid_ || !heap_.empty()) {
    const HeapEntry e = front_valid_ ? front_ : heap_[0];
    Slot& s = slot(e.slot);
    if (s.gen != e.gen || !s.armed) {
      queue_pop_top();
      --tombstones_;
      continue;
    }
    if (e.at > until) break;
    queue_pop_top();
    execute_event(s, e);
  }
  now_ = until;
  flush_metrics();
}

void Engine::run() {
  while (front_valid_ || !heap_.empty()) {
    const HeapEntry e = front_valid_ ? front_ : heap_[0];
    Slot& s = slot(e.slot);
    if (s.gen != e.gen || !s.armed) {
      queue_pop_top();
      --tombstones_;
      continue;
    }
    queue_pop_top();
    execute_event(s, e);
  }
  flush_metrics();
}

Engine::PoolStats Engine::pool_stats() const noexcept {
  PoolStats stats;
  stats.slots = slot_count_;
  stats.free_slots = free_count_;
  stats.tombstones = tombstones_;
  stats.reuses = reuses_;
  stats.spills = spills_;
  stats.rearms = rearms_;
  stats.compactions = compactions_;
  return stats;
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime start, SimTime period,
                           Callback fn)
    : engine_(&engine), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0.0)
    throw std::invalid_argument("PeriodicTask: non-positive period");
  arm(engine, start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (pending_ != 0) engine_->cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::set_period(SimTime period) {
  if (period <= 0.0)
    throw std::invalid_argument("PeriodicTask: non-positive period");
  period_ = period;
}

void PeriodicTask::arm(Engine& engine, SimTime at) {
  // One closure for the task's whole lifetime: each firing re-arms the
  // same pool slot in place (same EventId), so the steady state performs
  // no allocation and no free-list traffic. stop() from inside the
  // callback is safe — the executing event cannot be cancelled, and the
  // re-arm is skipped.
  pending_ = engine.schedule_at(at, [this](Engine& eng) {
    fn_(eng, *this);
    if (!stopped_)
      pending_ = eng.reschedule_current(eng.now() + period_);
    else
      pending_ = 0;
  });
}

}  // namespace beesim::sim
