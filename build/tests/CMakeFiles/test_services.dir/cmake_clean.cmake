file(REMOVE_RECURSE
  "CMakeFiles/test_services.dir/test_services.cpp.o"
  "CMakeFiles/test_services.dir/test_services.cpp.o.d"
  "test_services"
  "test_services.pdb"
  "test_services[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
