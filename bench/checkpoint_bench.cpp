// Microbench for the columnar-fleet tentpole (docs/CHECKPOINT.md), in
// three parts:
//
//   1. SoA vs AoS sweep throughput. The columnar advance path (stack
//      CompactLayout, StatColumns accumulators) races a frozen replica of
//      the pre-columnar hot loop — per cycle a heap-allocated
//      CompactAllocation (vector of ServerClass, each with a vector of
//      bands) folded into an array of per-point accumulator structs. The
//      replica lives in this translation unit on purpose (the
//      bench/seed_engine.hpp idiom): it must stay what the old code was,
//      not drift with the library. Both paths must land bit-identically
//      on the same sweep results (checked; exits non-zero otherwise).
//
//   2. Sweep checkpoint roundtrip: save -> restore -> save of the part-1
//      campaign must be byte-identical on disk (checked).
//
//   3. Million-hive farm snapshot: FarmColumns save and restore are each
//      timed against the 250 ms budget the resumable-fleet story quotes.
//
// With require=1 the speedup (>= 1.3x) and snapshot budgets become hard
// failures — scripts/check.sh runs the smoke sizes without it; the
// acceptance run uses hives=1000000 require=1.
//
// Usage: checkpoint_bench [hives=1000000] [cycles=2000] [seed=42]
//                         [parallel=10] [dir=/tmp] [require=0|1]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/checkpoint.hpp"
#include "core/fleet_columns.hpp"
#include "core/network_sim.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace beesim;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---- Frozen AoS replica of the pre-columnar hot loop -------------------

/// Per-point accumulators as one struct (array-of-structs form) — what
/// sweep() kept per point before FleetColumns.
struct AosPoint {
  int initial_clients = 0;
  int cycles = 0;
  int servers_used = 0;
  util::RunningStats lost_clients;
  util::RunningStats active_slots;
  util::RunningStats edge_energy;
  util::RunningStats cloud_energy;
  util::RunningStats total_energy;
};

/// Band-for-band replica of LargeScaleSimulator::server_energy for one
/// heap ServerClass (metrics elided — pure arithmetic).
util::Joules class_energy(const core::ServerSpec& server,
                          const core::LossConfig& loss,
                          const core::CompactAllocation::ServerClass& cls) {
  util::Seconds active_time = 0.0;
  util::Joules active_energy = 0.0;
  for (const auto& band : cls.bands) {
    const int k = band.clients_per_slot;
    if (k <= 0 || band.slots <= 0) continue;
    const auto slots = static_cast<double>(band.slots);
    active_time += slots * server.slot_duration(k);
    active_energy += slots * (server.slot_active_energy(k) *
                              loss.saturation_factor(k, server.max_parallel));
  }
  return server.idle_power * (server.cycle - active_time) + active_energy;
}

/// The old per-cycle body: heap CompactAllocation per cycle, struct
/// accumulators per point.
void aos_cycle(const core::FleetParams& params,
               const core::ServerSpec& server, int clients, util::Rng& rng,
               AosPoint& point) {
  const int lost = params.loss.draw_lost_clients(clients, rng);
  const int surviving = clients - lost;
  const double edge =
      static_cast<double>(surviving) * params.client.cycle_energy() +
      static_cast<double>(lost) * params.client.sleep_cycle_energy();
  const core::CompactAllocation alloc =
      core::allocate_compact(surviving, server, params.policy);
  double cloud = 0.0;
  for (const auto& cls : alloc.classes)
    cloud += static_cast<double>(cls.servers) *
             class_energy(server, params.loss, cls);
  point.servers_used = std::max(
      point.servers_used, static_cast<int>(alloc.servers_used()));
  point.lost_clients.add(static_cast<double>(lost));
  point.active_slots.add(static_cast<double>(alloc.active_slots()));
  point.edge_energy.add(edge);
  point.cloud_energy.add(cloud);
  point.total_energy.add(edge + cloud);
}

bool same_stats(const util::RunningStats& a, const util::RunningStats& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  return ra.n == rb.n && ra.mean == rb.mean && ra.m2 == rb.m2 &&
         ra.sum == rb.sum && ra.min == rb.min && ra.max == rb.max;
}

bool read_file(const std::string& path, std::vector<char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int hives =
      static_cast<int>(args.config().get_int("hives", 1000000));
  const int cycles = static_cast<int>(args.config().get_int("cycles", 2000));
  const auto seed =
      static_cast<std::uint64_t>(args.config().get_int("seed", 42));
  const int parallel =
      static_cast<int>(args.config().get_int("parallel", 10));
  const std::string dir = args.config().get_string("dir", "/tmp");
  const bool require = args.config().get_bool("require", false);
  if (hives < 1 || cycles < 1) {
    std::fprintf(stderr, "error: need hives >= 1, cycles >= 1\n");
    return 2;
  }

  bench::banner("Checkpoint", "columnar fleet state: SoA speedup and "
                              "snapshot latency");

  core::FleetParams fleet =
      core::FleetParams::paper_default(core::ServiceModel::kCnn, parallel);
  fleet.loss = core::LossConfig::all();
  const core::LargeScaleSimulator sim(fleet);
  // Four fleet sizes topping out at `hives`, quartered cycle budgets so
  // both paths do identical, non-trivial per-point work.
  const std::vector<int> counts = {hives / 8 + 1, hives / 4 + 1,
                                   hives / 2 + 1, hives};

  // --- Part 1: AoS replica vs columnar advance -------------------------
  std::vector<AosPoint> aos(counts.size());
  const auto aos_start = Clock::now();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    util::Rng rng = util::Rng::for_stream(
        seed, static_cast<std::uint64_t>(counts[i]));
    aos[i].initial_clients = counts[i];
    aos[i].cycles = cycles;
    for (int c = 0; c < cycles; ++c)
      aos_cycle(fleet, sim.effective_server(), counts[i], rng, aos[i]);
  }
  const double aos_time = seconds_since(aos_start);

  core::FleetColumns columns = core::FleetColumns::start(counts, seed,
                                                         cycles);
  const auto soa_start = Clock::now();
  sim.advance(columns, 0, 1);
  const double soa_time = seconds_since(soa_start);

  bool parity = columns.complete();
  const std::vector<core::SweepPoint> soa_points = columns.points();
  for (std::size_t i = 0; parity && i < counts.size(); ++i) {
    const auto& s = soa_points[i];
    const auto& a = aos[i];
    parity = s.initial_clients == a.initial_clients &&
             s.servers_used == a.servers_used &&
             same_stats(s.lost_clients, a.lost_clients) &&
             same_stats(s.active_slots, a.active_slots) &&
             same_stats(s.edge_energy, a.edge_energy) &&
             same_stats(s.cloud_energy, a.cloud_energy) &&
             same_stats(s.total_energy, a.total_energy);
  }
  if (!parity) {
    std::fprintf(stderr, "FAILED: AoS replica and columnar advance "
                         "diverged — the speedup comparison is void\n");
    return 1;
  }
  const double speedup = soa_time > 0.0 ? aos_time / soa_time : 0.0;
  const double cycle_count =
      static_cast<double>(counts.size()) * static_cast<double>(cycles);
  std::printf("\nLossy sweep, %zu points x %d cycles, top fleet %d "
              "hives:\n", counts.size(), cycles, hives);
  std::printf("  AoS (heap CompactAllocation): %8.3f s  (%.0f cycles/s)\n",
              aos_time, aos_time > 0.0 ? cycle_count / aos_time : 0.0);
  std::printf("  SoA (columnar advance):       %8.3f s  (%.0f cycles/s)\n",
              soa_time, soa_time > 0.0 ? cycle_count / soa_time : 0.0);
  std::printf("  speedup: %.2fx (target >= 1.30x)  [results bit-identical]\n",
              speedup);

  // --- Part 2: sweep checkpoint roundtrip ------------------------------
  const core::Hash128 hash = core::canonical_hash(sim.params());
  const std::string sweep_path = dir + "/checkpoint_bench_sweep.ck";
  const auto save1_start = Clock::now();
  core::save_checkpoint(sweep_path, columns, hash);
  const double save1_time = seconds_since(save1_start);
  const auto load1_start = Clock::now();
  const core::FleetColumns restored =
      core::load_fleet_checkpoint(sweep_path, hash);
  const double load1_time = seconds_since(load1_start);
  const std::string sweep_path2 = sweep_path + "2";
  core::save_checkpoint(sweep_path2, restored, hash);
  std::vector<char> image1, image2;
  const bool bytes_ok = read_file(sweep_path, image1) &&
                        read_file(sweep_path2, image2) && image1 == image2;
  std::printf("\nSweep checkpoint (%zu points, %zu bytes): save %.3f ms, "
              "restore %.3f ms, save->restore->save %s\n",
              columns.size(), image1.size(), save1_time * 1e3,
              load1_time * 1e3,
              bytes_ok ? "byte-identical" : "DIVERGED");
  std::remove(sweep_path.c_str());
  std::remove(sweep_path2.c_str());
  if (!bytes_ok) {
    std::fprintf(stderr, "FAILED: sweep checkpoint roundtrip is not "
                         "byte-stable\n");
    return 1;
  }

  // --- Part 3: million-hive farm snapshot ------------------------------
  core::FarmColumns farm;
  farm.resize(static_cast<std::size_t>(hives));
  util::Rng fill(seed);
  for (std::size_t i = 0; i < farm.size(); ++i) {
    farm.battery_level[i] = fill.uniform(0.0, 26640.0);
    farm.wakeups_attempted[i] = 288;
    farm.wakeups_completed[i] = 288 - (i % 7 == 0 ? 3 : 0);
    farm.wakeups_skipped[i] = i % 7 == 0 ? 3 : 0;
    farm.outage_time[i] = fill.uniform(0.0, 900.0);
    farm.harvested[i] = fill.uniform(0.0, 5000.0);
    farm.consumed[i] = fill.uniform(0.0, 5000.0);
    farm.regime_transitions[i] = static_cast<std::int32_t>(i % 5);
    farm.wakeups_degraded[i] = i % 11;
    farm.wakeups_muted[i] = i % 13;
    farm.events_executed[i] = 2000 + i % 100;
  }
  const std::string farm_path = dir + "/checkpoint_bench_farm.ck";
  const auto fsave_start = Clock::now();
  core::save_checkpoint(farm_path, farm);
  const double fsave_time = seconds_since(fsave_start);
  const auto fload_start = Clock::now();
  const core::FarmColumns farm_back = core::load_farm_checkpoint(farm_path);
  const double fload_time = seconds_since(fload_start);
  const bool farm_ok =
      farm_back.size() == farm.size() &&
      std::memcmp(farm.battery_level.data(), farm_back.battery_level.data(),
                  farm.size() * sizeof(double)) == 0 &&
      std::memcmp(farm.events_executed.data(),
                  farm_back.events_executed.data(),
                  farm.size() * sizeof(std::uint64_t)) == 0;
  std::remove(farm_path.c_str());
  std::printf("\nFarm snapshot, %d hives:\n", hives);
  std::printf("  save:    %8.2f ms (budget 250 ms)\n", fsave_time * 1e3);
  std::printf("  restore: %8.2f ms (budget 250 ms)  [%s]\n",
              fload_time * 1e3, farm_ok ? "roundtrip exact" : "DIVERGED");
  if (!farm_ok) {
    std::fprintf(stderr, "FAILED: farm snapshot roundtrip diverged\n");
    return 1;
  }

  if (require) {
    bool ok = true;
    if (speedup < 1.3) {
      std::fprintf(stderr, "FAILED: SoA speedup %.2fx below the 1.30x "
                           "target\n", speedup);
      ok = false;
    }
    if (fsave_time * 1e3 > 250.0 || fload_time * 1e3 > 250.0) {
      std::fprintf(stderr, "FAILED: farm snapshot over the 250 ms "
                           "budget\n");
      ok = false;
    }
    if (!ok) return 1;
  }
  std::printf("\ncheckpoint bench ok\n");
  return 0;
}
