#!/usr/bin/env python3
"""Plot the CSV series the beesim benches export.

The bench binaries reproduce the paper's figures as tables; this helper
turns their CSV exports into PNG plots for visual comparison with the
paper. Matplotlib is the only dependency.

Usage:
    ./build/bench/fig6_largescale_ideal csv=fig6.csv
    ./build/bench/fig7_crossover csv=fig7.csv
    ./build/bench/fig8_losses csv=fig8.csv
    python3 scripts/plot_figures.py fig6.csv fig7.csv fig8.csv -o plots/
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"{path}: empty CSV")
    return rows


def plot_fig6(rows, ax):
    n = [int(r["clients"]) for r in rows]
    ax.plot(n, [float(r["edge_per_client"]) for r in rows],
            color="tab:red", label="edge devices (per client)")
    ax.plot(n, [float(r["server_per_client"]) for r in rows],
            color="black", label="servers (per client)")
    ax.plot(n, [float(r["total_per_client"]) for r in rows],
            color="tab:blue", label="total (per client)")
    ax.set_xlabel("number of clients")
    ax.set_ylabel("energy per client per cycle (J)")
    ax.set_title("Fig 6 — ideal large-scale simulation")
    ax.legend()


def plot_fig7(rows, ax):
    for panel, style in (("7a", "--"), ("7b", "-")):
        sub = [r for r in rows if r["panel"] == panel]
        if not sub:
            continue
        n = [int(r["clients"]) for r in sub]
        ax.plot(n, [float(r["edge_only"]) for r in sub], style,
                color="tab:blue", label=f"edge-only ({panel})")
        ax.plot(n, [float(r["edge_cloud"]) for r in sub], style,
                color="tab:green", label=f"edge+cloud ({panel})")
    ax.set_xlabel("number of clients")
    ax.set_ylabel("energy per client per cycle (J)")
    ax.set_title("Fig 7 — edge vs edge+cloud crossover")
    ax.legend()


def plot_fig8(rows, ax):
    colors = {"8a": "tab:orange", "8b": "tab:purple", "8c": "tab:brown",
              "8d": "black"}
    for panel, color in colors.items():
        sub = [r for r in rows if r["panel"] == panel]
        if not sub:
            continue
        n = [int(r["clients"]) for r in sub]
        ax.plot(n, [float(r["server_per_client"]) for r in sub],
                color=color, label=f"loss {panel[-1].upper()}")
    ax.set_xlabel("initial number of clients")
    ax.set_ylabel("server energy per client (J)")
    ax.set_title("Fig 8 — losses")
    ax.legend()


PLOTTERS = {
    ("clients", "servers", "edge_per_client"): plot_fig6,
    ("panel", "clients", "edge_only"): plot_fig7,
    ("panel", "clients", "lost"): plot_fig8,
}


def pick_plotter(rows):
    header = set(rows[0].keys())
    for signature, plotter in PLOTTERS.items():
        if set(signature) <= header:
            return plotter
    sys.exit(f"unrecognized CSV header: {sorted(header)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files from the benches")
    parser.add_argument("-o", "--out-dir", default=".",
                        help="directory for the PNG outputs")
    args = parser.parse_args()

    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(args.out_dir, exist_ok=True)
    for path in args.csvs:
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(7, 4.5))
        pick_plotter(rows)(rows, ax)
        ax.grid(True, alpha=0.3)
        out = os.path.join(
            args.out_dir,
            os.path.splitext(os.path.basename(path))[0] + ".png")
        fig.tight_layout()
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
