#include "device/sim_device.hpp"

#include <stdexcept>

namespace beesim::device {

SimDevice::SimDevice(sim::Engine& engine, DeviceProfile profile,
                     std::uint64_t seed)
    : engine_(&engine), profile_(std::move(profile)), rng_(seed) {
  meter_.set_power(engine.now(), profile_.off_power, "off");
}

void SimDevice::enter_sleep() {
  if (busy_) throw std::logic_error("SimDevice: sleep while busy");
  meter_.set_power(engine_->now(), profile_.sleep_power, "sleep");
}

void SimDevice::power_off() {
  if (busy_) throw std::logic_error("SimDevice: power off while busy");
  meter_.set_power(engine_->now(), profile_.off_power, "off");
}

void SimDevice::enter_idle() {
  if (busy_) throw std::logic_error("SimDevice: idle while busy");
  meter_.set_power(engine_->now(), profile_.idle_power, "idle");
}

void SimDevice::run_sequence(const std::vector<std::string>& task_names,
                             DoneCallback done) {
  TaskSequence tasks;
  tasks.reserve(task_names.size());
  for (const auto& name : task_names) tasks.push_back(profile_.task(name));
  run_spec_sequence(std::move(tasks), std::move(done));
}

void SimDevice::run_spec_sequence(TaskSequence tasks, DoneCallback done) {
  if (busy_) throw std::logic_error("SimDevice: already busy");
  busy_ = true;
  step(*engine_, std::move(tasks), 0, std::move(done));
}

void SimDevice::step(sim::Engine& engine, TaskSequence tasks,
                     std::size_t index, DoneCallback done) {
  if (index == tasks.size()) {
    busy_ = false;
    ++completed_;
    enter_sleep();
    if (done) done(engine);
    return;
  }
  const TaskSpec& task = tasks[index];
  meter_.set_power(engine.now(), task.power, task.name);
  const util::Seconds duration = task.sampled_duration(rng_);
  engine.schedule_after(duration, [this, tasks = std::move(tasks), index,
                                   done = std::move(done)](
                                      sim::Engine& eng) mutable {
    step(eng, std::move(tasks), index + 1, std::move(done));
  });
}

}  // namespace beesim::device
